/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panicIf() is for internal invariant violations (bugs in this library);
 * fatalIf() is for user errors (bad configuration, invalid arguments).
 */

#ifndef COBRA_UTIL_ERROR_H
#define COBRA_UTIL_ERROR_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cobra {

/** Terminate with an internal-bug diagnostic. Never returns. */
[[noreturn]] inline void
panic(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

/** Terminate with a user-error diagnostic. Never returns. */
[[noreturn]] inline void
fatal(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

/** Print a warning and continue. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace cobra

#define COBRA_PANIC_IF(cond, msg)                                            \
    do {                                                                     \
        if (cond) {                                                          \
            std::ostringstream oss_;                                         \
            oss_ << msg;                                                     \
            ::cobra::panic(oss_.str(), __FILE__, __LINE__);                  \
        }                                                                    \
    } while (0)

#define COBRA_FATAL_IF(cond, msg)                                            \
    do {                                                                     \
        if (cond) {                                                          \
            std::ostringstream oss_;                                         \
            oss_ << msg;                                                     \
            ::cobra::fatal(oss_.str(), __FILE__, __LINE__);                  \
        }                                                                    \
    } while (0)

#endif // COBRA_UTIL_ERROR_H
