/**
 * @file
 * Error taxonomy: recoverable errors vs internal invariants.
 *
 * Two failure classes, two mechanisms:
 *
 *  - panic / COBRA_PANIC_IF — internal invariant violations (bugs in
 *    this library). Aborts: state is untrusted, nothing sensible can be
 *    recovered. Reserved for conditions no input can legitimately cause.
 *
 *  - Error / Status / COBRA_THROW_IF / COBRA_FATAL_IF — user and
 *    environment errors (bad configuration, invalid arguments, corrupt
 *    or truncated input files). These *throw* a typed cobra::Error so
 *    library callers can recover; only executables (bench/, examples/)
 *    translate an uncaught Error into process exit. Subsystems that
 *    prefer error-return over exceptions wrap the throwing API into
 *    Status-returning variants (see src/graph/io.h).
 *
 * COBRA_FATAL_IF predates the taxonomy and is kept as shorthand for
 * COBRA_THROW_IF(cond, ErrorCode::kInvalidArgument, msg): every one of
 * its call sites guards a caller-supplied argument or configuration.
 */

#ifndef COBRA_UTIL_ERROR_H
#define COBRA_UTIL_ERROR_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cobra {

/** Classification of recoverable errors (inspired by absl::Status). */
enum class ErrorCode
{
    kOk = 0,
    kInvalidArgument,    ///< bad user-supplied argument or configuration
    kFailedPrecondition, ///< operation ordering / object state misuse
    kIoError,            ///< the OS refused an open/read/write
    kCorruptFile,        ///< file exists but its contents are malformed
    kOutOfRange,         ///< an index or endpoint exceeds its namespace
    kCapacityExceeded,   ///< a sized structure received more than planned
    kDataLoss,           ///< conservation check failed: tuples went missing
    kUnimplemented,      ///< technique not supported by this kernel
    kInternal,           ///< escaped invariant (should have been a panic)
    kDeadlineExceeded,   ///< the run's watchdog deadline expired
    kCancelled,          ///< cooperative cancellation was requested
    kResourceExhausted,  ///< a MemoryBudget (or similar quota) ran out
    kUnavailable,        ///< service overloaded or shutting down; retry later
};

inline const char *
to_string(ErrorCode c)
{
    switch (c) {
      case ErrorCode::kOk: return "ok";
      case ErrorCode::kInvalidArgument: return "invalid-argument";
      case ErrorCode::kFailedPrecondition: return "failed-precondition";
      case ErrorCode::kIoError: return "io-error";
      case ErrorCode::kCorruptFile: return "corrupt-file";
      case ErrorCode::kOutOfRange: return "out-of-range";
      case ErrorCode::kCapacityExceeded: return "capacity-exceeded";
      case ErrorCode::kDataLoss: return "data-loss";
      case ErrorCode::kUnimplemented: return "unimplemented";
      case ErrorCode::kInternal: return "internal";
      case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
      case ErrorCode::kCancelled: return "cancelled";
      case ErrorCode::kResourceExhausted: return "resource-exhausted";
      case ErrorCode::kUnavailable: return "unavailable";
    }
    return "unknown";
}

/** Recoverable error thrown at subsystem boundaries. */
class Error : public std::runtime_error
{
  public:
    Error(ErrorCode code, const std::string &msg)
        : std::runtime_error(std::string(to_string(code)) + ": " + msg),
          code_(code)
    {
    }

    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

/** Error-return alternative to Error for non-throwing boundaries. */
class Status
{
  public:
    Status() = default;
    Status(ErrorCode code, std::string msg)
        : code_(code), msg_(std::move(msg))
    {
    }

    static Status Ok() { return Status{}; }

    /**
     * Demote a thrown Error. Error::what() embeds "<code-name>: ", and
     * Status::toString() re-prepends it, so the prefix is stripped here
     * to keep round-tripped messages from stuttering the code twice.
     */
    static Status
    FromError(const Error &e)
    {
        std::string msg = e.what();
        const std::string prefix = std::string(to_string(e.code())) + ": ";
        if (msg.compare(0, prefix.size(), prefix) == 0)
            msg.erase(0, prefix.size());
        return Status(e.code(), std::move(msg));
    }

    bool ok() const { return code_ == ErrorCode::kOk; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return msg_; }

    std::string
    toString() const
    {
        if (ok())
            return "ok";
        return std::string(to_string(code_)) + ": " + msg_;
    }

  private:
    ErrorCode code_ = ErrorCode::kOk;
    std::string msg_;
};

/** Terminate with an internal-bug diagnostic. Never returns. */
[[noreturn]] inline void
panic(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

/**
 * Report a user error. Throws a recoverable cobra::Error — library code
 * never terminates the process; executables catch at main().
 */
[[noreturn]] inline void
fatal(const std::string &msg, const char *file, int line,
      ErrorCode code = ErrorCode::kInvalidArgument)
{
    std::ostringstream oss;
    oss << msg << " (" << file << ":" << line << ")";
    throw Error(code, oss.str());
}

/** Print a warning and continue. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace cobra

#define COBRA_PANIC_IF(cond, msg)                                            \
    do {                                                                     \
        if (cond) {                                                          \
            std::ostringstream oss_;                                         \
            oss_ << msg;                                                     \
            ::cobra::panic(oss_.str(), __FILE__, __LINE__);                  \
        }                                                                    \
    } while (0)

/** Throw a typed, recoverable cobra::Error when @p cond holds. */
#define COBRA_THROW_IF(cond, code, msg)                                      \
    do {                                                                     \
        if (cond) {                                                          \
            std::ostringstream oss_;                                         \
            oss_ << msg;                                                     \
            ::cobra::fatal(oss_.str(), __FILE__, __LINE__, (code));          \
        }                                                                    \
    } while (0)

#define COBRA_FATAL_IF(cond, msg)                                            \
    COBRA_THROW_IF(cond, ::cobra::ErrorCode::kInvalidArgument, msg)

#endif // COBRA_UTIL_ERROR_H
