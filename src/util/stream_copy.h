/**
 * @file
 * Non-temporal (write-combining) memory copy for the native PB runtime.
 *
 * PB's Binning phase writes each in-memory bin strictly sequentially and
 * never reads it back until Accumulate, so its C-Buffer drains are the
 * textbook use for streaming stores: they bypass the cache hierarchy and
 * avoid the read-for-ownership that a normal store would issue, halving
 * the bin write traffic and keeping the bins from evicting the C-Buffer
 * working set (paper Section III-C; the authors added the same
 * non-temporal store modeling to Sniper).
 *
 * On non-x86 hosts (or without SSE2) everything degrades to memcpy, which
 * keeps the native runtime portable; the simulated path never calls these
 * helpers, so simulation results are identical on every host.
 */

#ifndef COBRA_UTIL_STREAM_COPY_H
#define COBRA_UTIL_STREAM_COPY_H

#include <cstdint>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace cobra {

/**
 * Copy @p bytes from @p src to @p dst, using non-temporal stores for the
 * 16B-aligned body of the destination. Handles any alignment/size: the
 * head (up to alignment) and the sub-16B tail fall back to plain stores
 * (8B tail still streams via _mm_stream_si64 when the pointer allows).
 */
inline void
streamCopy(void *dst, const void *src, size_t bytes)
{
#if defined(__SSE2__)
    auto *d = static_cast<unsigned char *>(dst);
    auto *s = static_cast<const unsigned char *>(src);
    size_t head = (16 - (reinterpret_cast<uintptr_t>(d) & 15)) & 15;
    if (head > bytes)
        head = bytes;
    if (head) {
        std::memcpy(d, s, head);
        d += head;
        s += head;
        bytes -= head;
    }
    while (bytes >= 16) {
        __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i *>(s));
        _mm_stream_si128(reinterpret_cast<__m128i *>(d), v);
        d += 16;
        s += 16;
        bytes -= 16;
    }
#if defined(__x86_64__)
    if (bytes >= 8) {
        long long v;
        std::memcpy(&v, s, 8);
        _mm_stream_si64(reinterpret_cast<long long *>(d), v);
        d += 8;
        s += 8;
        bytes -= 8;
    }
#endif
    if (bytes)
        std::memcpy(d, s, bytes);
#else
    std::memcpy(dst, src, bytes);
#endif
}

/**
 * Stream exactly one 64B cache line from @p src to @p dst as four
 * aligned non-temporal 16B stores — the drain instruction sequence of a
 * full write-combining buffer (software C-Buffer). Unlike streamCopy
 * there is no head/tail handling and no per-call alignment probing: both
 * pointers MUST be 16B-aligned (the WC engines guarantee 64B on both
 * sides), which is what makes this the cheapest possible drain.
 */
inline void
streamLine64(void *dst, const void *src)
{
#if defined(__SSE2__)
    auto *d = reinterpret_cast<__m128i *>(dst);
    auto *s = reinterpret_cast<const __m128i *>(src);
    _mm_stream_si128(d + 0, _mm_load_si128(s + 0));
    _mm_stream_si128(d + 1, _mm_load_si128(s + 1));
    _mm_stream_si128(d + 2, _mm_load_si128(s + 2));
    _mm_stream_si128(d + 3, _mm_load_si128(s + 3));
#else
    std::memcpy(dst, src, 64);
#endif
}

/**
 * Order all prior non-temporal stores before subsequent operations. Must
 * run before bins written with streamCopy are handed to another thread
 * (the Binning-to-Accumulate barrier); WC stores are weakly ordered.
 */
inline void
streamFence()
{
#if defined(__SSE2__)
    _mm_sfence();
#endif
}

} // namespace cobra

#endif // COBRA_UTIL_STREAM_COPY_H
