/**
 * @file
 * Minimal JSON support for machine-readable experiment output.
 *
 * JsonWriter: streaming write-only emitter with correct string escaping
 * (cobra_cli --json, metrics/trace export, ad-hoc tooling).
 *
 * JsonValue / parseJson: a small recursive-descent reader, added so the
 * observability tests can validate their own emitters (golden-schema
 * tests parse the chrome-tracing and benchmark JSON this repo writes).
 * It accepts standard JSON; numbers are held as double, which is exact
 * for the integer ranges our emitters produce (< 2^53).
 */

#ifndef COBRA_UTIL_JSON_H
#define COBRA_UTIL_JSON_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/error.h"

namespace cobra {

/** Streaming JSON writer with nesting checks. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os_) : os(os_) {}

    ~JsonWriter()
    {
        // Unbalanced output is a bug in the caller; flag loudly in
        // debug-style fashion without throwing from a destructor.
        if (!stack.empty())
            warn("JsonWriter destroyed with open scopes");
    }

    JsonWriter &
    beginObject()
    {
        prefix();
        os << "{";
        stack.push_back(Scope{'}', true});
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        prefix();
        os << "[";
        stack.push_back(Scope{']', true});
        return *this;
    }

    JsonWriter &
    end()
    {
        COBRA_PANIC_IF(stack.empty(), "end() without open scope");
        os << stack.back().closer;
        stack.pop_back();
        return *this;
    }

    JsonWriter &
    key(const std::string &k)
    {
        COBRA_PANIC_IF(stack.empty() || stack.back().closer != '}',
                       "key() outside an object");
        prefix();
        writeString(k);
        os << ":";
        pendingValue = true;
        return *this;
    }

    JsonWriter &value(const std::string &v)
    {
        prefix();
        writeString(v);
        return *this;
    }

    JsonWriter &value(const char *v) { return value(std::string(v)); }

    JsonWriter &
    value(double v)
    {
        prefix();
        if (std::isfinite(v))
            os << v;
        else
            os << "null";
        return *this;
    }

    JsonWriter &
    value(uint64_t v)
    {
        prefix();
        os << v;
        return *this;
    }

    JsonWriter &
    value(int64_t v)
    {
        prefix();
        os << v;
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        prefix();
        os << (v ? "true" : "false");
        return *this;
    }

    /** key + scalar in one call. */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

  private:
    struct Scope
    {
        char closer;
        bool first;
    };

    void
    prefix()
    {
        if (pendingValue) {
            pendingValue = false;
            return; // the comma/space was handled by key()
        }
        if (!stack.empty()) {
            if (!stack.back().first)
                os << ",";
            stack.back().first = false;
        }
    }

    void
    writeString(const std::string &s)
    {
        os << '"';
        for (char c : s) {
            switch (c) {
              case '"': os << "\\\""; break;
              case '\\': os << "\\\\"; break;
              case '\n': os << "\\n"; break;
              case '\t': os << "\\t"; break;
              case '\r': os << "\\r"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
            }
        }
        os << '"';
    }

    std::ostream &os;
    std::vector<Scope> stack;
    bool pendingValue = false;
};

/** Parsed JSON document node. */
class JsonValue
{
  public:
    enum class Type
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isBool() const { return type_ == Type::kBool; }
    bool isNumber() const { return type_ == Type::kNumber; }
    bool isString() const { return type_ == Type::kString; }
    bool isArray() const { return type_ == Type::kArray; }
    bool isObject() const { return type_ == Type::kObject; }

    bool asBool() const { return b_; }
    double asDouble() const { return num_; }
    int64_t asInt() const { return static_cast<int64_t>(num_); }
    uint64_t asUint() const { return static_cast<uint64_t>(num_); }
    const std::string &asString() const { return str_; }
    const std::vector<JsonValue> &items() const { return arr_; }
    const std::map<std::string, JsonValue> &members() const { return obj_; }

    bool has(const std::string &key) const { return obj_.count(key) != 0; }

    /** Object member lookup; a shared null value when absent. */
    const JsonValue &
    operator[](const std::string &key) const
    {
        auto it = obj_.find(key);
        return it == obj_.end() ? nullValue() : it->second;
    }

    /** Array element; a shared null value when out of range. */
    const JsonValue &
    at(size_t i) const
    {
        return i < arr_.size() ? arr_[i] : nullValue();
    }

    size_t
    size() const
    {
        return type_ == Type::kArray ? arr_.size() : obj_.size();
    }

    static const JsonValue &
    nullValue()
    {
        static const JsonValue v;
        return v;
    }

    // Construction is the parser's business, but kept public so tests
    // can build expected values directly.
    Type type_ = Type::kNull;
    bool b_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

namespace json_detail {

/** Recursive-descent parser over [p, end); Status-returning. */
class Parser
{
  public:
    /**
     * Maximum container nesting depth. The parser recurses once per
     * nested array/object, so depth must be bounded or adversarial
     * input like "[[[[..." overflows the call stack (found by fuzzing;
     * see fuzz/fuzz_json.cc). 128 is far beyond anything our emitters
     * produce while keeping worst-case stack use in the tens of KB.
     */
    static constexpr int kMaxDepth = 128;

    Parser(const char *p, const char *end) : p_(p), end_(end) {}

    Status
    parse(JsonValue *out)
    {
        Status s = value(out);
        if (!s.ok())
            return s;
        skipWs();
        if (p_ != end_)
            return err("trailing characters after JSON value");
        return Status::Ok();
    }

  private:
    Status
    err(const std::string &msg) const
    {
        return Status(ErrorCode::kCorruptFile,
                      "json parse error at byte " +
                          std::to_string(consumed_) + ": " + msg);
    }

    void
    skipWs()
    {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                              *p_ == '\r'))
            advance();
    }

    void
    advance()
    {
        ++p_;
        ++consumed_;
    }

    bool
    consume(char c)
    {
        if (p_ != end_ && *p_ == c) {
            advance();
            return true;
        }
        return false;
    }

    Status
    literal(const char *word, JsonValue *out, JsonValue v)
    {
        for (const char *w = word; *w; ++w)
            if (!consume(*w))
                return err(std::string("expected '") + word + "'");
        *out = std::move(v);
        return Status::Ok();
    }

    Status
    value(JsonValue *out)
    {
        skipWs();
        if (p_ == end_)
            return err("unexpected end of input");
        switch (*p_) {
          case '{':
              if (depth_ >= kMaxDepth)
                  return err("nesting deeper than " +
                             std::to_string(kMaxDepth) + " levels");
              return object(out);
          case '[':
              if (depth_ >= kMaxDepth)
                  return err("nesting deeper than " +
                             std::to_string(kMaxDepth) + " levels");
              return array(out);
          case '"': {
              out->type_ = JsonValue::Type::kString;
              return string(&out->str_);
          }
          case 't': {
              JsonValue v;
              v.type_ = JsonValue::Type::kBool;
              v.b_ = true;
              return literal("true", out, std::move(v));
          }
          case 'f': {
              JsonValue v;
              v.type_ = JsonValue::Type::kBool;
              return literal("false", out, std::move(v));
          }
          case 'n': return literal("null", out, JsonValue{});
          default: return number(out);
        }
    }

    Status
    object(JsonValue *out)
    {
        advance(); // '{'
        ++depth_;
        struct DepthGuard
        {
            int &d;
            ~DepthGuard() { --d; }
        } guard{depth_};
        out->type_ = JsonValue::Type::kObject;
        skipWs();
        if (consume('}'))
            return Status::Ok();
        for (;;) {
            skipWs();
            if (p_ == end_ || *p_ != '"')
                return err("expected object key string");
            std::string key;
            if (Status s = string(&key); !s.ok())
                return s;
            skipWs();
            if (!consume(':'))
                return err("expected ':' after object key");
            JsonValue v;
            if (Status s = value(&v); !s.ok())
                return s;
            out->obj_.emplace(std::move(key), std::move(v));
            skipWs();
            if (consume('}'))
                return Status::Ok();
            if (!consume(','))
                return err("expected ',' or '}' in object");
        }
    }

    Status
    array(JsonValue *out)
    {
        advance(); // '['
        ++depth_;
        struct DepthGuard
        {
            int &d;
            ~DepthGuard() { --d; }
        } guard{depth_};
        out->type_ = JsonValue::Type::kArray;
        skipWs();
        if (consume(']'))
            return Status::Ok();
        for (;;) {
            JsonValue v;
            if (Status s = value(&v); !s.ok())
                return s;
            out->arr_.push_back(std::move(v));
            skipWs();
            if (consume(']'))
                return Status::Ok();
            if (!consume(','))
                return err("expected ',' or ']' in array");
        }
    }

    Status
    string(std::string *out)
    {
        advance(); // '"'
        out->clear();
        while (p_ != end_) {
            char c = *p_;
            advance();
            if (c == '"')
                return Status::Ok();
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (p_ == end_)
                break;
            char e = *p_;
            advance();
            switch (e) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      if (p_ == end_)
                          return err("truncated \\u escape");
                      char h = *p_;
                      advance();
                      cp <<= 4;
                      if (h >= '0' && h <= '9')
                          cp |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          cp |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          cp |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          return err("bad hex digit in \\u escape");
                  }
                  // Our emitters only produce \u00XX control escapes;
                  // other code points degrade to UTF-8 of the BMP value.
                  if (cp < 0x80) {
                      out->push_back(static_cast<char>(cp));
                  } else if (cp < 0x800) {
                      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
                      out->push_back(
                          static_cast<char>(0x80 | (cp & 0x3F)));
                  } else {
                      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
                      out->push_back(
                          static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                      out->push_back(
                          static_cast<char>(0x80 | (cp & 0x3F)));
                  }
                  break;
              }
              default: return err("unknown escape sequence");
            }
        }
        return err("unterminated string");
    }

    Status
    number(JsonValue *out)
    {
        const char *start = p_;
        if (p_ != end_ && (*p_ == '-' || *p_ == '+'))
            advance();
        bool any = false;
        auto digits = [&] {
            while (p_ != end_ && *p_ >= '0' && *p_ <= '9') {
                advance();
                any = true;
            }
        };
        digits();
        if (p_ != end_ && *p_ == '.') {
            advance();
            digits();
        }
        if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
            advance();
            if (p_ != end_ && (*p_ == '-' || *p_ == '+'))
                advance();
            digits();
        }
        if (!any)
            return err("invalid number");
        out->type_ = JsonValue::Type::kNumber;
        out->num_ = std::strtod(std::string(start, p_).c_str(), nullptr);
        return Status::Ok();
    }

    const char *p_;
    const char *end_;
    size_t consumed_ = 0;
    int depth_ = 0; ///< current container nesting (bounded by kMaxDepth)
};

} // namespace json_detail

/** Parse a complete JSON document. */
inline Status
parseJson(const std::string &text, JsonValue *out)
{
    *out = JsonValue{};
    json_detail::Parser p(text.data(), text.data() + text.size());
    return p.parse(out);
}

} // namespace cobra

#endif // COBRA_UTIL_JSON_H
