/**
 * @file
 * Minimal JSON writer for machine-readable experiment output
 * (cobra_cli --json and ad-hoc tooling). Write-only, streaming, with
 * correct string escaping; no parsing.
 */

#ifndef COBRA_UTIL_JSON_H
#define COBRA_UTIL_JSON_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/error.h"

namespace cobra {

/** Streaming JSON writer with nesting checks. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os_) : os(os_) {}

    ~JsonWriter()
    {
        // Unbalanced output is a bug in the caller; flag loudly in
        // debug-style fashion without throwing from a destructor.
        if (!stack.empty())
            warn("JsonWriter destroyed with open scopes");
    }

    JsonWriter &
    beginObject()
    {
        prefix();
        os << "{";
        stack.push_back(Scope{'}', true});
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        prefix();
        os << "[";
        stack.push_back(Scope{']', true});
        return *this;
    }

    JsonWriter &
    end()
    {
        COBRA_PANIC_IF(stack.empty(), "end() without open scope");
        os << stack.back().closer;
        stack.pop_back();
        return *this;
    }

    JsonWriter &
    key(const std::string &k)
    {
        COBRA_PANIC_IF(stack.empty() || stack.back().closer != '}',
                       "key() outside an object");
        prefix();
        writeString(k);
        os << ":";
        pendingValue = true;
        return *this;
    }

    JsonWriter &value(const std::string &v)
    {
        prefix();
        writeString(v);
        return *this;
    }

    JsonWriter &value(const char *v) { return value(std::string(v)); }

    JsonWriter &
    value(double v)
    {
        prefix();
        if (std::isfinite(v))
            os << v;
        else
            os << "null";
        return *this;
    }

    JsonWriter &
    value(uint64_t v)
    {
        prefix();
        os << v;
        return *this;
    }

    JsonWriter &
    value(int64_t v)
    {
        prefix();
        os << v;
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        prefix();
        os << (v ? "true" : "false");
        return *this;
    }

    /** key + scalar in one call. */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

  private:
    struct Scope
    {
        char closer;
        bool first;
    };

    void
    prefix()
    {
        if (pendingValue) {
            pendingValue = false;
            return; // the comma/space was handled by key()
        }
        if (!stack.empty()) {
            if (!stack.back().first)
                os << ",";
            stack.back().first = false;
        }
    }

    void
    writeString(const std::string &s)
    {
        os << '"';
        for (char c : s) {
            switch (c) {
              case '"': os << "\\\""; break;
              case '\\': os << "\\\\"; break;
              case '\n': os << "\\n"; break;
              case '\t': os << "\\t"; break;
              case '\r': os << "\\r"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
            }
        }
        os << '"';
    }

    std::ostream &os;
    std::vector<Scope> stack;
    bool pendingValue = false;
};

} // namespace cobra

#endif // COBRA_UTIL_JSON_H
