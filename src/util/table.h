/**
 * @file
 * ASCII table printer used by the benchmark harness to emit the rows and
 * series of each paper table/figure in a uniform format.
 */

#ifndef COBRA_UTIL_TABLE_H
#define COBRA_UTIL_TABLE_H

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace cobra {

/** Column-aligned ASCII table with a title and header row. */
class Table
{
  public:
    explicit Table(std::string title_) : title(std::move(title_)) {}

    Table &
    header(std::vector<std::string> cols)
    {
        head = std::move(cols);
        return *this;
    }

    Table &
    row(std::vector<std::string> cells)
    {
        rows.push_back(std::move(cells));
        return *this;
    }

    /** Format a double with @p prec digits after the point. */
    static std::string
    num(double v, int prec = 2)
    {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(prec) << v;
        return oss.str();
    }

    void
    print(std::ostream &os) const
    {
        std::vector<size_t> w(head.size(), 0);
        auto widen = [&](const std::vector<std::string> &r) {
            for (size_t i = 0; i < r.size() && i < w.size(); ++i)
                if (r[i].size() > w[i])
                    w[i] = r[i].size();
        };
        widen(head);
        for (const auto &r : rows)
            widen(r);

        size_t total = 1;
        for (size_t c : w)
            total += c + 3;

        os << "\n== " << title << " ==\n";
        auto rule = [&] { os << std::string(total, '-') << "\n"; };
        auto line = [&](const std::vector<std::string> &r) {
            os << "|";
            for (size_t i = 0; i < w.size(); ++i) {
                std::string cell = i < r.size() ? r[i] : "";
                os << " " << std::left << std::setw(static_cast<int>(w[i]))
                   << cell << " |";
            }
            os << "\n";
        };
        rule();
        line(head);
        rule();
        for (const auto &r : rows)
            line(r);
        rule();
    }

  private:
    std::string title;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace cobra

#endif // COBRA_UTIL_TABLE_H
