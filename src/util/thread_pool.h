/**
 * @file
 * A small fixed-size thread pool with a blocked-range parallelFor.
 *
 * Software PB is a parallel optimization: every thread owns private bins and
 * coalescing buffers so Binning needs no synchronization (paper Section
 * III-A). Two subsystems run on this pool:
 *
 *  - the native (wall-clock) parallel PB runtime (src/pb/parallel_pb.h),
 *    which shards the update stream across per-thread PbBinners;
 *  - the host-parallel multicore simulator (src/harness/parallel.h), which
 *    dispatches each simulated core's between-barrier work onto a worker.
 *    Per-core state is private, so the simulation is bit-identical for any
 *    host thread count (see DESIGN.md Section 5).
 *
 * A task that throws does not take the process down: the pool captures
 * every task exception and rethrows from wait() (and therefore from
 * parallelFor), after every in-flight task has finished. A single failure
 * is rethrown as-is; when several tasks failed in one wait() window the
 * first is rethrown with a summary of the others appended, so concurrent
 * secondary failures are never silently dropped.
 *
 * The pool is also cancellation-aware: once the run's active CancelToken
 * (src/resilience/cancel.h) is cancelled, workers stop *starting* queued
 * tasks — each skipped task completes immediately and the cancellation
 * Status surfaces from wait() if no task exception was captured first.
 * Tasks already running unwind at their own cancellation checkpoints.
 */

#ifndef COBRA_UTIL_THREAD_POOL_H
#define COBRA_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/error.h"

namespace cobra {

/**
 * CLI-boundary guard for a user-supplied worker count (the pool itself
 * treats 0 as "hardware"; an *explicit* 0, negative, or absurd request
 * is a typo the run should reject, not silently reinterpret — same
 * contract as validatePbBinCount in src/pb/bin_range.h).
 */
inline Status
validateThreadCount(long long threads)
{
    constexpr long long kMaxThreads = 4096;
    if (threads <= 0)
        return Status(ErrorCode::kInvalidArgument,
                      "thread count must be positive");
    if (threads > kMaxThreads)
        return Status(ErrorCode::kInvalidArgument,
                      "thread count " + std::to_string(threads) +
                          " exceeds the sanity cap of " +
                          std::to_string(kMaxThreads));
    return Status::Ok();
}

/** Fixed-size worker pool. Tasks are void() callables. */
class ThreadPool
{
  public:
    /**
     * @param num_threads 0 means hardware_concurrency (at least 1).
     * @param numa_pin distribute workers round-robin across the host's
     *        NUMA nodes and pin each to its node's CPU set, so a
     *        worker's first-touched pages (per-thread bin storage) stay
     *        on the socket that later streams them. A no-op on
     *        single-node hosts or when sysfs hides the topology — the
     *        pool degrades to the unpinned layout.
     */
    explicit ThreadPool(size_t num_threads = 0, bool numa_pin = false);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t numThreads() const { return workers.size(); }

    /**
     * NUMA node worker @p w was assigned to (0 when unpinned — every
     * consumer then sees one node, which disables cross-node steal
     * ordering without a special case).
     */
    int
    workerNode(size_t w) const
    {
        return w < workerNodes.size() ? workerNodes[w] : 0;
    }

    /** Per-worker node assignment (for StealQueue victim ordering). */
    const std::vector<int> &nodeMap() const { return workerNodes; }

    /**
     * Index of the pool worker executing the caller, or -1 off-pool
     * (e.g. on the thread that owns the pool). Stable for the worker's
     * lifetime; used by the observability layer to attribute trace
     * spans to the emitting worker.
     */
    static int currentWorkerId();

    /** Enqueue a task; returns immediately. */
    void enqueue(std::function<void()> task);

    /**
     * Block until every enqueued task has finished. If any task threw,
     * rethrows here (and clears the captured set, so the pool stays
     * usable): one failure is rethrown unchanged; multiple failures
     * rethrow the first with "(+N more task failure(s): ...)" appended
     * when it is a cobra::Error (foreign exception types are rethrown
     * as-is and the secondary messages go to warn()).
     */
    void wait();

    /**
     * Run fn(block_id, begin, end) over [0, n) split into one contiguous
     * block per worker (never more blocks than n, never an empty block).
     * Blocks until all blocks complete; rethrows the first task exception.
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t, size_t, size_t)> &fn);

  private:
    void workerLoop(size_t worker_id);

    std::vector<std::thread> workers;
    std::vector<int> workerNodes; ///< NUMA node per worker (empty = node 0)
    std::queue<std::function<void()>> tasks;
    std::mutex mtx;
    std::condition_variable cvTask;
    std::condition_variable cvDone;
    std::vector<std::exception_ptr> taskErrors;
    size_t inFlight = 0;
    bool stopping = false;
};

} // namespace cobra

#endif // COBRA_UTIL_THREAD_POOL_H
