/**
 * @file
 * A small fixed-size thread pool with a blocked-range parallelFor.
 *
 * Software PB is a parallel optimization: every thread owns private bins and
 * coalescing buffers so Binning needs no synchronization (paper Section
 * III-A). Two subsystems run on this pool:
 *
 *  - the native (wall-clock) parallel PB runtime (src/pb/parallel_pb.h),
 *    which shards the update stream across per-thread PbBinners;
 *  - the host-parallel multicore simulator (src/harness/parallel.h), which
 *    dispatches each simulated core's between-barrier work onto a worker.
 *    Per-core state is private, so the simulation is bit-identical for any
 *    host thread count (see DESIGN.md Section 5).
 *
 * A task that throws does not take the process down: the pool captures the
 * first exception and rethrows it from wait() (and therefore from
 * parallelFor), after every in-flight task has finished.
 */

#ifndef COBRA_UTIL_THREAD_POOL_H
#define COBRA_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cobra {

/** Fixed-size worker pool. Tasks are void() callables. */
class ThreadPool
{
  public:
    /** @param num_threads 0 means hardware_concurrency (at least 1). */
    explicit ThreadPool(size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t numThreads() const { return workers.size(); }

    /**
     * Index of the pool worker executing the caller, or -1 off-pool
     * (e.g. on the thread that owns the pool). Stable for the worker's
     * lifetime; used by the observability layer to attribute trace
     * spans to the emitting worker.
     */
    static int currentWorkerId();

    /** Enqueue a task; returns immediately. */
    void enqueue(std::function<void()> task);

    /**
     * Block until every enqueued task has finished. If any task threw, the
     * first captured exception is rethrown here (and cleared, so the pool
     * stays usable).
     */
    void wait();

    /**
     * Run fn(block_id, begin, end) over [0, n) split into one contiguous
     * block per worker (never more blocks than n, never an empty block).
     * Blocks until all blocks complete; rethrows the first task exception.
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t, size_t, size_t)> &fn);

  private:
    void workerLoop(size_t worker_id);

    std::vector<std::thread> workers;
    std::queue<std::function<void()>> tasks;
    std::mutex mtx;
    std::condition_variable cvTask;
    std::condition_variable cvDone;
    std::exception_ptr firstError;
    size_t inFlight = 0;
    bool stopping = false;
};

} // namespace cobra

#endif // COBRA_UTIL_THREAD_POOL_H
