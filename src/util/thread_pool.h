/**
 * @file
 * A small fixed-size thread pool with a blocked-range parallelFor and
 * per-submitter task groups.
 *
 * Software PB is a parallel optimization: every thread owns private bins and
 * coalescing buffers so Binning needs no synchronization (paper Section
 * III-A). Three subsystems run on this pool:
 *
 *  - the native (wall-clock) parallel PB runtime (src/pb/parallel_pb.h),
 *    which shards the update stream across per-thread PbBinners;
 *  - the host-parallel multicore simulator (src/harness/parallel.h), which
 *    dispatches each simulated core's between-barrier work onto a worker;
 *  - the batch server (src/server/), whose dispatcher threads run several
 *    *concurrent* supervised PB executions on one shared pool.
 *
 * The third consumer is why tasks are organized into **groups**. wait()
 * used to be a whole-pool barrier; with two tenants' runs interleaved in
 * the queue that would make each request wait on the other's shards (and
 * collect the other's failures). Instead every task belongs to a
 * ThreadPool::Group — by default a per-pool implicit group (so the
 * single-client behaviour is exactly the historical one), or the group
 * installed on the submitting thread via Group::Scope. wait() blocks on
 * and rethrows from the *caller's* group only.
 *
 * Execution-scope inheritance: library code finds its run-scoped
 * services (CancelToken, MemoryBudget, FaultInjector — see
 * src/resilience/cancel.h for the pattern) through per-thread active
 * pointers. enqueue() snapshots the submitting thread's three pointers
 * and the worker installs them around the task body, so a shard always
 * observes the cancellation token, memory budget, and fault plan of the
 * run that spawned it — never a concurrent run's.
 *
 * A task that throws does not take the process down: the pool captures
 * every task exception into the task's group and rethrows from wait()
 * (and therefore from parallelFor), after every in-flight task of that
 * group has finished. A single failure is rethrown as-is; when several
 * tasks failed in one wait() window the first is rethrown with a summary
 * of the others appended, so concurrent secondary failures are never
 * silently dropped.
 *
 * The pool is also cancellation-aware: once a task's inherited
 * CancelToken is cancelled, workers stop *starting* that run's queued
 * tasks — each skipped task completes immediately and the cancellation
 * Status surfaces from wait() if no task exception was captured first.
 * Tasks already running unwind at their own cancellation checkpoints.
 * Other groups' tasks are untouched: one tenant's tripped deadline never
 * sheds a neighbour's work.
 */

#ifndef COBRA_UTIL_THREAD_POOL_H
#define COBRA_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/error.h"

namespace cobra {

class CancelToken;
class MemoryBudget;
class FaultInjector;

/**
 * CLI-boundary guard for a user-supplied worker count (the pool itself
 * treats 0 as "hardware"; an *explicit* 0, negative, or absurd request
 * is a typo the run should reject, not silently reinterpret — same
 * contract as validatePbBinCount in src/pb/bin_range.h).
 */
inline Status
validateThreadCount(long long threads)
{
    constexpr long long kMaxThreads = 4096;
    if (threads <= 0)
        return Status(ErrorCode::kInvalidArgument,
                      "thread count must be positive");
    if (threads > kMaxThreads)
        return Status(ErrorCode::kInvalidArgument,
                      "thread count " + std::to_string(threads) +
                          " exceeds the sanity cap of " +
                          std::to_string(kMaxThreads));
    return Status::Ok();
}

/** Fixed-size worker pool. Tasks are void() callables. */
class ThreadPool
{
  public:
    /**
     * @param num_threads 0 means hardware_concurrency (at least 1).
     * @param numa_pin distribute workers round-robin across the host's
     *        NUMA nodes and pin each to its node's CPU set, so a
     *        worker's first-touched pages (per-thread bin storage) stay
     *        on the socket that later streams them. A no-op on
     *        single-node hosts or when sysfs hides the topology — the
     *        pool degrades to the unpinned layout.
     */
    explicit ThreadPool(size_t num_threads = 0, bool numa_pin = false);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * One client's slice of the pool: a private in-flight counter and
     * failure set, so concurrent clients can share the workers without
     * sharing a barrier. Construct one per logical run (the batch
     * server's dispatcher makes one per request), install it with
     * Group::Scope, and every enqueue()/wait() on the installing thread
     * — including those inside Kernel::runPbParallel, which knows
     * nothing about groups — routes to it.
     *
     * The destructor drains any still-queued tasks of the group
     * (discarding their errors with a warning), so a group can never
     * dangle under its in-flight tasks even when its owner unwinds.
     */
    class Group
    {
      public:
        explicit Group(ThreadPool &pool) : pool_(pool) {}
        ~Group();
        Group(const Group &) = delete;
        Group &operator=(const Group &) = delete;

        ThreadPool &pool() const { return pool_; }

        /** Route the calling thread's enqueue/wait to @p g. Nests. */
        class Scope
        {
          public:
            explicit Scope(Group &g);
            ~Scope();
            Scope(const Scope &) = delete;
            Scope &operator=(const Scope &) = delete;

          private:
            Group *prev_;
        };

      private:
        friend class ThreadPool;
        ThreadPool &pool_;
        size_t inFlight = 0;                     ///< guarded by pool mtx
        std::vector<std::exception_ptr> errors;  ///< guarded by pool mtx
    };

    size_t numThreads() const { return workers.size(); }

    /**
     * NUMA node worker @p w was assigned to (0 when unpinned — every
     * consumer then sees one node, which disables cross-node steal
     * ordering without a special case).
     */
    int
    workerNode(size_t w) const
    {
        return w < workerNodes.size() ? workerNodes[w] : 0;
    }

    /** Per-worker node assignment (for StealQueue victim ordering). */
    const std::vector<int> &nodeMap() const { return workerNodes; }

    /**
     * Index of the pool worker executing the caller, or -1 off-pool
     * (e.g. on the thread that owns the pool). Stable for the worker's
     * lifetime; used by the observability layer to attribute trace
     * spans to the emitting worker.
     */
    static int currentWorkerId();

    /**
     * Enqueue a task into the calling thread's current group (the
     * installed Group::Scope, else this pool's implicit default group);
     * returns immediately. The task inherits the submitting thread's
     * active CancelToken / MemoryBudget / FaultInjector.
     */
    void enqueue(std::function<void()> task);

    /**
     * Block until every task enqueued into the calling thread's current
     * group has finished. If any of that group's tasks threw, rethrows
     * here (and clears the group's captured set, so the group stays
     * usable): one failure is rethrown unchanged; multiple failures
     * rethrow the first with "(+N more task failure(s): ...)" appended
     * when it is a cobra::Error (foreign exception types are rethrown
     * as-is and the secondary messages go to warn()).
     */
    void wait();

    /**
     * Run fn(block_id, begin, end) over [0, n) split into one contiguous
     * block per worker (never more blocks than n, never an empty block).
     * Blocks until all blocks complete; rethrows the first task exception.
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t, size_t, size_t)> &fn);

  private:
    /** One queued task plus its group and inherited execution scope. */
    struct Pending
    {
        std::function<void()> fn;
        Group *group;
        CancelToken *token;
        MemoryBudget *budget;
        FaultInjector *injector;
    };

    void workerLoop(size_t worker_id);

    /** The calling thread's group on this pool (default when none). */
    Group &currentGroup();

    /** Drain @p g's tasks without throwing (dtor path). */
    void drainGroup(Group &g);

    std::vector<std::thread> workers;
    std::vector<int> workerNodes; ///< NUMA node per worker (empty = node 0)
    std::queue<Pending> tasks;
    std::mutex mtx;
    std::condition_variable cvTask;
    std::condition_variable cvDone;
    bool stopping = false;

    /** Single-client fallback so the historical API needs no Group. */
    Group defaultGroup_{*this};
};

} // namespace cobra

#endif // COBRA_UTIL_THREAD_POOL_H
