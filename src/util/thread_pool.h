/**
 * @file
 * A small fixed-size thread pool with a blocked-range parallelFor.
 *
 * Software PB is a parallel optimization: every thread owns private bins and
 * coalescing buffers so Binning needs no synchronization (paper Section
 * III-A). Two subsystems run on this pool:
 *
 *  - the native (wall-clock) parallel PB runtime (src/pb/parallel_pb.h),
 *    which shards the update stream across per-thread PbBinners;
 *  - the host-parallel multicore simulator (src/harness/parallel.h), which
 *    dispatches each simulated core's between-barrier work onto a worker.
 *    Per-core state is private, so the simulation is bit-identical for any
 *    host thread count (see DESIGN.md Section 5).
 *
 * A task that throws does not take the process down: the pool captures
 * every task exception and rethrows from wait() (and therefore from
 * parallelFor), after every in-flight task has finished. A single failure
 * is rethrown as-is; when several tasks failed in one wait() window the
 * first is rethrown with a summary of the others appended, so concurrent
 * secondary failures are never silently dropped.
 *
 * The pool is also cancellation-aware: once the run's active CancelToken
 * (src/resilience/cancel.h) is cancelled, workers stop *starting* queued
 * tasks — each skipped task completes immediately and the cancellation
 * Status surfaces from wait() if no task exception was captured first.
 * Tasks already running unwind at their own cancellation checkpoints.
 */

#ifndef COBRA_UTIL_THREAD_POOL_H
#define COBRA_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cobra {

/** Fixed-size worker pool. Tasks are void() callables. */
class ThreadPool
{
  public:
    /** @param num_threads 0 means hardware_concurrency (at least 1). */
    explicit ThreadPool(size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t numThreads() const { return workers.size(); }

    /**
     * Index of the pool worker executing the caller, or -1 off-pool
     * (e.g. on the thread that owns the pool). Stable for the worker's
     * lifetime; used by the observability layer to attribute trace
     * spans to the emitting worker.
     */
    static int currentWorkerId();

    /** Enqueue a task; returns immediately. */
    void enqueue(std::function<void()> task);

    /**
     * Block until every enqueued task has finished. If any task threw,
     * rethrows here (and clears the captured set, so the pool stays
     * usable): one failure is rethrown unchanged; multiple failures
     * rethrow the first with "(+N more task failure(s): ...)" appended
     * when it is a cobra::Error (foreign exception types are rethrown
     * as-is and the secondary messages go to warn()).
     */
    void wait();

    /**
     * Run fn(block_id, begin, end) over [0, n) split into one contiguous
     * block per worker (never more blocks than n, never an empty block).
     * Blocks until all blocks complete; rethrows the first task exception.
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t, size_t, size_t)> &fn);

  private:
    void workerLoop(size_t worker_id);

    std::vector<std::thread> workers;
    std::queue<std::function<void()>> tasks;
    std::mutex mtx;
    std::condition_variable cvTask;
    std::condition_variable cvDone;
    std::vector<std::exception_ptr> taskErrors;
    size_t inFlight = 0;
    bool stopping = false;
};

} // namespace cobra

#endif // COBRA_UTIL_THREAD_POOL_H
