/**
 * @file
 * A small fixed-size thread pool with a blocked-range parallelFor.
 *
 * Software PB is a parallel optimization: every thread owns private bins and
 * coalescing buffers so Binning needs no synchronization (paper Section
 * III-A). The native (wall-clock) PB runtime uses this pool; the simulated
 * runs model a single core plus its NUCA slice and therefore execute
 * sequentially (see DESIGN.md Section 5).
 */

#ifndef COBRA_UTIL_THREAD_POOL_H
#define COBRA_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cobra {

/** Fixed-size worker pool. Tasks are void() callables. */
class ThreadPool
{
  public:
    /** @param num_threads 0 means hardware_concurrency (at least 1). */
    explicit ThreadPool(size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t numThreads() const { return workers.size(); }

    /** Enqueue a task; returns immediately. */
    void enqueue(std::function<void()> task);

    /** Block until every enqueued task has finished. */
    void wait();

    /**
     * Run fn(thread_id, begin, end) over [0, n) split into one contiguous
     * block per worker. Blocks until all blocks complete.
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t, size_t, size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::queue<std::function<void()>> tasks;
    std::mutex mtx;
    std::condition_variable cvTask;
    std::condition_variable cvDone;
    size_t inFlight = 0;
    bool stopping = false;
};

} // namespace cobra

#endif // COBRA_UTIL_THREAD_POOL_H
