/**
 * @file
 * CSR-Segmenting: state-of-the-art 1D graph tiling (Zhang et al.,
 * "Making caches work for graph analytics"), the software locality
 * optimization the paper compares PB against in Section VII-D / Fig 15.
 *
 * The source-vertex range is split into segments whose vertex data fits
 * in cache; a per-segment CSR (over destinations with in-neighbors in
 * the segment) is built once as a preprocessing step. A pull iteration
 * then processes one segment at a time: reads of segment-local source
 * data hit cache, and writes sweep destinations in ascending order.
 * Tiling's catch — and the paper's point — is the preprocessing cost of
 * building all the per-segment CSRs, which PB does not pay.
 */

#ifndef COBRA_TILING_CSR_SEGMENTING_H
#define COBRA_TILING_CSR_SEGMENTING_H

#include <vector>

#include "src/graph/csr.h"
#include "src/sim/exec_ctx.h"

namespace cobra {

/** A graph partitioned into source-range segments. */
class SegmentedCsr
{
  public:
    /** One segment: CSR over destinations with >= 1 in-segment edge. */
    struct Segment
    {
        NodeId srcBegin = 0;
        NodeId srcEnd = 0;
        std::vector<NodeId> rows;        ///< destinations, ascending
        std::vector<EdgeOffset> offsets; ///< rows.size()+1 entries
        std::vector<NodeId> srcs;        ///< in-segment sources per row
    };

    /**
     * Build from the transpose graph @p csc (csc.neighbors(v) = the
     * in-neighbors of v). @p segment_vertices is the source-range width
     * of each segment; the instrumentation on @p ctx charges the
     * preprocessing cost that Fig 15 reports as Tiling's init overhead.
     */
    static SegmentedCsr build(ExecCtx &ctx, const CsrGraph &csc,
                              NodeId segment_vertices);

    size_t numSegments() const { return segments.size(); }
    const Segment &segment(size_t s) const { return segments[s]; }
    NodeId numNodes() const { return nodes; }

    /**
     * One segmented pull iteration: next[v] += sum of contrib[u] over
     * in-segment in-neighbors u, one segment at a time.
     */
    void pullIteration(ExecCtx &ctx, const std::vector<float> &contrib,
                       std::vector<float> &next) const;

  private:
    std::vector<Segment> segments;
    NodeId nodes = 0;
};

} // namespace cobra

#endif // COBRA_TILING_CSR_SEGMENTING_H
