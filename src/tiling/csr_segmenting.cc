#include "src/tiling/csr_segmenting.h"

#include "src/util/bitops.h"
#include "src/util/error.h"

namespace cobra {

SegmentedCsr
SegmentedCsr::build(ExecCtx &ctx, const CsrGraph &csc,
                    NodeId segment_vertices)
{
    COBRA_FATAL_IF(segment_vertices == 0, "empty segment range");
    SegmentedCsr out;
    out.nodes = csc.numNodes();
    const size_t num_segs =
        divCeil(csc.numNodes(), segment_vertices);
    out.segments.resize(num_segs);
    for (size_t s = 0; s < num_segs; ++s) {
        out.segments[s].srcBegin = static_cast<NodeId>(s *
                                                       segment_vertices);
        out.segments[s].srcEnd = static_cast<NodeId>(
            std::min<uint64_t>(csc.numNodes(),
                               (s + 1) *
                                   static_cast<uint64_t>(
                                       segment_vertices)));
    }

    // Pass 1: per-segment edge counts per destination row. The paper's
    // init-overhead point is exactly this: tiling must stream every edge
    // twice and materialize per-segment CSRs before the first iteration.
    std::vector<std::vector<NodeId>> seg_rows(num_segs);
    std::vector<std::vector<EdgeOffset>> seg_counts(num_segs);
    for (NodeId v = 0; v < csc.numNodes(); ++v) {
        ctx.load(&csc.offsetsArray()[v], 8);
        for (NodeId u : csc.neighbors(v)) {
            ctx.load(&u, 4);
            ctx.instr(2);
            size_t s = u / segment_vertices;
            if (seg_rows[s].empty() || seg_rows[s].back() != v) {
                seg_rows[s].push_back(v);
                seg_counts[s].push_back(0);
                ctx.store(&seg_rows[s].back(), 4);
            }
            ++seg_counts[s].back();
            ctx.store(&seg_counts[s].back(), 8);
        }
    }

    // Pass 2: materialize per-segment CSR arrays.
    for (size_t s = 0; s < num_segs; ++s) {
        Segment &seg = out.segments[s];
        seg.rows = std::move(seg_rows[s]);
        seg.offsets.assign(seg.rows.size() + 1, 0);
        EdgeOffset acc = 0;
        for (size_t r = 0; r < seg.rows.size(); ++r) {
            seg.offsets[r] = acc;
            acc += seg_counts[s][r];
            ctx.instr(2);
            ctx.store(&seg.offsets[r], 8);
        }
        seg.offsets[seg.rows.size()] = acc;
        seg.srcs.resize(acc);
    }
    // Edges arrive grouped by ascending destination, which is exactly
    // the order rows/offsets were laid out in, so a single append cursor
    // per segment suffices.
    std::vector<EdgeOffset> edge_cursor(num_segs, 0);
    for (NodeId v = 0; v < csc.numNodes(); ++v) {
        for (NodeId u : csc.neighbors(v)) {
            ctx.load(&u, 4);
            ctx.instr(2);
            size_t s = u / segment_vertices;
            Segment &seg = out.segments[s];
            EdgeOffset pos = edge_cursor[s]++;
            seg.srcs[pos] = u;
            ctx.store(&seg.srcs[pos], 4);
        }
    }
    return out;
}

void
SegmentedCsr::pullIteration(ExecCtx &ctx,
                            const std::vector<float> &contrib,
                            std::vector<float> &next) const
{
    for (const Segment &seg : segments) {
        for (size_t r = 0; r < seg.rows.size(); ++r) {
            const NodeId v = seg.rows[r];
            ctx.load(&seg.rows[r], 4);
            ctx.load(&seg.offsets[r], 8);
            float acc = 0.0f;
            for (EdgeOffset e = seg.offsets[r]; e < seg.offsets[r + 1];
                 ++e) {
                // Source data is segment-local: these loads hit cache.
                ctx.load(&seg.srcs[e], 4);
                ctx.load(&contrib[seg.srcs[e]], 4);
                ctx.instr(2);
                acc += contrib[seg.srcs[e]];
            }
            // Destination sweep is ascending within a segment.
            ctx.load(&next[v], 4);
            ctx.instr(1);
            next[v] += acc;
            ctx.store(&next[v], 4);
        }
    }
}

} // namespace cobra
