/**
 * @file
 * Watchdog: turns an expired per-run deadline into cooperative
 * cancellation.
 *
 * The native runtime's failure mode for a stalled shard is a hang —
 * ThreadPool::wait() blocks forever because the shard never finishes.
 * The Watchdog owns one background thread; arm() gives it a deadline,
 * and if disarm() does not happen first, the thread trips the run's
 * CancelToken with ErrorCode::kDeadlineExceeded. The stalled shard (and
 * every other shard) then throws at its next cancellation checkpoint,
 * the pool's wait() rethrows, and the caller sees a typed, recoverable
 * error instead of a hang.
 *
 * The watchdog can only cancel *cooperatively*: code with no
 * checkpoints (the serial-reference fallback rung, a shard wedged in a
 * syscall) will still run to completion — the deadline bounds detection
 * latency for code that honors the checkpoint discipline, which all
 * four PB Binning engines and the parallel runner do.
 *
 * arm()/disarm() pairs may be reused across attempts; each arm bumps a
 * generation so a stale timeout from a previous attempt can never trip
 * the current one. Trips are counted on the watchdog and published as
 * the "watchdog.trips" metric + a trace instant when observability is
 * installed.
 */

#ifndef COBRA_RESILIENCE_WATCHDOG_H
#define COBRA_RESILIENCE_WATCHDOG_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "src/resilience/cancel.h"

namespace cobra {

/** One deadline-enforcing background thread bound to a CancelToken. */
class Watchdog
{
  public:
    explicit Watchdog(CancelToken &token);
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Start (or restart) the countdown: cancel the token with
     * kDeadlineExceeded if disarm() is not called within @p timeout.
     * @p what names the guarded work for the cancellation reason.
     */
    void arm(std::chrono::milliseconds timeout, std::string what);

    /** Stop the countdown (idempotent; a no-op after a trip). */
    void disarm();

    /** Deadlines that expired and cancelled the token. */
    uint64_t
    trips() const
    {
        return trips_.load(std::memory_order_relaxed);
    }

  private:
    void loop();

    CancelToken &token_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::chrono::steady_clock::time_point deadlineAt_{};
    std::chrono::milliseconds timeout_{0};
    std::string what_;
    uint64_t generation_ = 0;
    bool armed_ = false;
    bool stop_ = false;

    std::atomic<uint64_t> trips_{0};
    std::thread thread_; ///< started last: loop() reads the fields above
};

} // namespace cobra

#endif // COBRA_RESILIENCE_WATCHDOG_H
