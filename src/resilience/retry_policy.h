/**
 * @file
 * Bounded retry with exponential backoff and seeded jitter.
 *
 * The RunSupervisor consults a RetryPolicy twice per failed attempt:
 * is the error class recoverable at all, and how long to back off
 * before the next attempt. Backoff doubles per attempt from baseDelay
 * up to maxDelay, with a seeded ±jitterFrac fuzz so a fleet of
 * supervisors recovering from a shared incident does not retry in
 * lockstep. Jitter uses the repo's deterministic Rng — same seed, same
 * schedule — so tests of the supervisor remain reproducible.
 *
 * Recoverability is a property of the *code*, not the message:
 *
 *   recoverable:   kDeadlineExceeded (stall tripped the watchdog),
 *                  kCancelled, kDataLoss (conservation/oracle failure —
 *                  a re-run with a clean engine can converge),
 *                  kCapacityExceeded, kResourceExhausted (a degraded
 *                  plan may fit), kIoError (transient environment),
 *                  kUnavailable (server overloaded: the batch-server
 *                  client backs off and resubmits)
 *   unrecoverable: kInvalidArgument, kFailedPrecondition, kCorruptFile,
 *                  kOutOfRange, kUnimplemented, kInternal — retrying
 *                  the same bad input cannot help.
 */

#ifndef COBRA_RESILIENCE_RETRY_POLICY_H
#define COBRA_RESILIENCE_RETRY_POLICY_H

#include <chrono>
#include <cstdint>

#include "src/util/error.h"
#include "src/util/rng.h"

namespace cobra {

/** Attempt/backoff schedule for one supervised run. */
struct RetryPolicy
{
    /** Total attempts (first try included). 1 disables retries. */
    uint32_t maxAttempts = 4;

    /** Backoff before attempt 2; doubles per further attempt. */
    std::chrono::milliseconds baseDelay{0};

    /** Backoff ceiling. */
    std::chrono::milliseconds maxDelay{2000};

    /** Fraction of the delay randomized away (0 .. 1). */
    double jitterFrac = 0.2;

    /** Jitter seed (deterministic schedule for a fixed seed). */
    uint64_t seed = 0x5eedbacc0ffULL;

    /** Whether a failure with @p code is worth another attempt. */
    static bool
    isRetryable(ErrorCode code)
    {
        switch (code) {
          case ErrorCode::kDeadlineExceeded:
          case ErrorCode::kCancelled:
          case ErrorCode::kDataLoss:
          case ErrorCode::kCapacityExceeded:
          case ErrorCode::kResourceExhausted:
          case ErrorCode::kIoError:
          case ErrorCode::kUnavailable:
            return true;
          default:
            return false;
        }
    }

    /**
     * Backoff before @p attempt (2-based: the delay preceding attempt
     * 2 is delayFor(2)). Exponential from baseDelay, capped at
     * maxDelay, then jittered by ±jitterFrac using @p rng.
     */
    std::chrono::milliseconds
    delayFor(uint32_t attempt, Rng &rng) const
    {
        if (baseDelay.count() <= 0 || attempt < 2)
            return std::chrono::milliseconds(0);
        uint64_t d = static_cast<uint64_t>(baseDelay.count());
        for (uint32_t i = 2; i < attempt && d < static_cast<uint64_t>(
                                                    maxDelay.count());
             ++i)
            d *= 2;
        d = std::min<uint64_t>(d, static_cast<uint64_t>(maxDelay.count()));
        if (jitterFrac > 0.0) {
            uint64_t spread =
                static_cast<uint64_t>(static_cast<double>(d) * jitterFrac);
            if (spread > 0)
                d = d - spread + rng.below(2 * spread + 1);
        }
        return std::chrono::milliseconds(static_cast<int64_t>(d));
    }
};

} // namespace cobra

#endif // COBRA_RESILIENCE_RETRY_POLICY_H
