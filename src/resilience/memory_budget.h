/**
 * @file
 * Per-run memory budget for the native PB runtime.
 *
 * A production run must not OOM the host because a plan was oversized:
 * with a MemoryBudget installed (same dynamic-scope pattern as the
 * fault injector and CancelToken), every aligned allocation the PB
 * engines make — BinStorage layouts, WC staging lines, hierarchical
 * coarse runs — is charged against the budget *before* the memory is
 * requested, and an over-budget charge throws a recoverable
 * ErrorCode::kResourceExhausted instead of letting operator new fail or
 * the OOM killer fire. The RunSupervisor catches that error and retries
 * with a degraded plan (shallower WC lines, coarser bins, simpler
 * engine) whose footprint fits.
 *
 * Charging sits in alignedAlloc / AlignedArray (src/util/
 * aligned_array.h), which every PB allocation already goes through, so
 * no engine needs budget-specific code. Disabled (no active budget) the
 * hook is a single null check per *allocation* — allocations are rare
 * and phase-boundary-only, so this is far colder than even the drain
 * paths.
 *
 * Lifetime: a release is credited to the budget that was charged, via
 * the pointer the allocation hook captured. The budget must therefore
 * outlive every allocation charged against it; the RunSupervisor
 * guarantees this by scoping binner lifetimes inside the budget scope.
 *
 * Header-only: depends only on the error taxonomy, so the bottom-layer
 * allocator header can include it without a cycle.
 */

#ifndef COBRA_RESILIENCE_MEMORY_BUDGET_H
#define COBRA_RESILIENCE_MEMORY_BUDGET_H

#include <atomic>
#include <cstdint>
#include <string>

#include "src/util/error.h"

namespace cobra {

/** Byte quota shared by all allocations inside one scope. */
class MemoryBudget
{
  public:
    /** @param limit_bytes 0 means unlimited (track but never refuse). */
    explicit MemoryBudget(uint64_t limit_bytes) : limit_(limit_bytes) {}

    MemoryBudget(const MemoryBudget &) = delete;
    MemoryBudget &operator=(const MemoryBudget &) = delete;

    /** The allocation hooks consult; null means budgeting disabled. */
    static MemoryBudget *active() { return active_; }

    /**
     * Swap the calling thread's active budget, returning the previous
     * one (the ThreadPool's task-scope installer; use Scope elsewhere).
     */
    static MemoryBudget *
    exchangeActive(MemoryBudget *b)
    {
        MemoryBudget *prev = active_;
        active_ = b;
        return prev;
    }

    /**
     * RAII activation, same shape as CancelToken::Scope: per-thread with
     * save/restore nesting, so concurrent supervised runs each charge
     * their own budget and a tenant's quota never throttles a neighbour.
     */
    class Scope
    {
      public:
        explicit Scope(MemoryBudget &b) : prev_(exchangeActive(&b)) {}
        ~Scope() { active_ = prev_; }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        MemoryBudget *prev_;
    };

    uint64_t limitBytes() const { return limit_; }

    uint64_t
    usedBytes() const
    {
        return used_.load(std::memory_order_relaxed);
    }

    /** High-water mark of usedBytes() over the budget's lifetime. */
    uint64_t
    peakBytes() const
    {
        return peak_.load(std::memory_order_relaxed);
    }

    /** Charges refused over the budget's lifetime. */
    uint64_t
    refusals() const
    {
        return refusals_.load(std::memory_order_relaxed);
    }

    /**
     * Reserve @p bytes, or throw kResourceExhausted (leaving usage
     * unchanged) when the reservation would exceed the limit. Thread-
     * safe: per-thread binners allocate concurrently during Init.
     */
    void
    charge(uint64_t bytes)
    {
        uint64_t prev = used_.fetch_add(bytes, std::memory_order_relaxed);
        uint64_t now = prev + bytes;
        if (limit_ != 0 && now > limit_) {
            used_.fetch_sub(bytes, std::memory_order_relaxed);
            refusals_.fetch_add(1, std::memory_order_relaxed);
            throw Error(ErrorCode::kResourceExhausted,
                        "memory budget exhausted: requested " +
                            std::to_string(bytes) + " B with " +
                            std::to_string(prev) + " of " +
                            std::to_string(limit_) + " B already in use");
        }
        // Racy max update: good enough for a telemetry high-water mark.
        uint64_t peak = peak_.load(std::memory_order_relaxed);
        while (now > peak &&
               !peak_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
        }
    }

    /** Return @p bytes to the budget (paired with a successful charge). */
    void
    release(uint64_t bytes)
    {
        used_.fetch_sub(bytes, std::memory_order_relaxed);
    }

  private:
    const uint64_t limit_;
    std::atomic<uint64_t> used_{0};
    std::atomic<uint64_t> peak_{0};
    std::atomic<uint64_t> refusals_{0};

    inline static thread_local MemoryBudget *active_ = nullptr;
};

/**
 * Charge @p bytes against the active budget (if any) and return the
 * budget charged, so the owner can credit the release to the same
 * budget even if the scope has moved on by free time.
 */
inline MemoryBudget *
chargeActiveBudget(uint64_t bytes)
{
    MemoryBudget *b = MemoryBudget::active();
    if (b) [[unlikely]]
        b->charge(bytes);
    return b;
}

} // namespace cobra

#endif // COBRA_RESILIENCE_MEMORY_BUDGET_H
