/**
 * @file
 * Cooperative cancellation for the native PB runtime.
 *
 * A stalled shard must surface as a typed error, never as a hang — but
 * the hot insert loop cannot afford a per-tuple check. The contract
 * mirrors the fault injector's (src/check/fault_injector.h): a
 * CancelToken is installed for a dynamic scope, and *cold* paths only
 * (drains, flushes, shard-block and bin boundaries) call
 * cancellationPoint(), which disarmed is a single well-predicted
 * null-pointer check.
 *
 * Cancellation is one-shot and sticky: the first cancel(code, reason)
 * wins, later ones are ignored. Checkpoints convert the flag into a
 * thrown cobra::Error carrying the canceller's code (kDeadlineExceeded
 * from the Watchdog, kCancelled for explicit requests), which the
 * ThreadPool propagates out of wait() like any task failure.
 *
 * The active token is per *thread* (with save/restore nesting), not per
 * process: the batch server runs many supervised executions
 * concurrently, each with its own token, and a request's cancellation
 * must never leak into a neighbour tenant's run. Pool tasks inherit the
 * submitting thread's token at enqueue time (the ThreadPool snapshots
 * the execution scope and installs it around the task body), so the
 * historical single-run behaviour — install on the run thread, observed
 * by every shard — is unchanged.
 *
 * Deadline is a plain steady_clock wrapper; the Watchdog
 * (src/resilience/watchdog.h) is what turns an expired deadline into a
 * cancel() without the cancellee's cooperation beyond its checkpoints.
 *
 * Header-only on purpose, same as the fault injector: the checkpoints
 * live in template headers across src/pb and must not drag in a library
 * dependency.
 */

#ifndef COBRA_RESILIENCE_CANCEL_H
#define COBRA_RESILIENCE_CANCEL_H

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>

#include "src/util/error.h"

namespace cobra {

/** One run's sticky cancellation flag (thread-safe). */
class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** The checkpoints consult; null means cancellation disabled. */
    static CancelToken *active() { return active_; }

    /**
     * Swap the calling thread's active token, returning the previous
     * one. The ThreadPool uses this to install a task's inherited token
     * on the worker for the task's duration; everyone else should use
     * the RAII Scope.
     */
    static CancelToken *
    exchangeActive(CancelToken *t)
    {
        CancelToken *prev = active_;
        active_ = t;
        return prev;
    }

    /** RAII activation: checkpoints see the token only inside the scope
     * (on this thread; nests by restoring the previous token). */
    class Scope
    {
      public:
        explicit Scope(CancelToken &t) : prev_(exchangeActive(&t)) {}
        ~Scope() { active_ = prev_; }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        CancelToken *prev_;
    };

    /**
     * Request cancellation. First caller wins (code/reason are sticky);
     * callable from any thread, including the Watchdog's.
     */
    void
    cancel(ErrorCode code, const std::string &reason)
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (cancelled_.load(std::memory_order_relaxed))
                return;
            code_ = code;
            reason_ = reason;
        }
        cancelled_.store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }

    /** Why (valid only after cancelled() returned true). */
    Status
    status() const
    {
        if (!cancelled())
            return Status::Ok();
        std::lock_guard<std::mutex> lk(mu_);
        return Status(code_, reason_);
    }

    /** Convert the flag into the typed error checkpoints throw. */
    void
    throwIfCancelled() const
    {
        if (cancelled()) [[unlikely]] {
            Status s = status();
            throw Error(s.code(), s.message());
        }
    }

  private:
    std::atomic<bool> cancelled_{false};
    mutable std::mutex mu_;
    ErrorCode code_ = ErrorCode::kCancelled;
    std::string reason_;

    inline static thread_local CancelToken *active_ = nullptr;
};

/**
 * Cold-path checkpoint: throws the canceller's Error when the active
 * token (if any) was tripped. Disarmed this is one null check — the
 * same cost discipline as the fault-injector hooks, and it is placed on
 * the same cold paths (drain/flush/finalizeInit, shard-block and bin
 * boundaries), never in the per-tuple insert loop.
 */
inline void
cancellationPoint()
{
    if (CancelToken *t = CancelToken::active(); t) [[unlikely]]
        t->throwIfCancelled();
}

/** A point in steady time a run must finish by. */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    Deadline() = default; // never expires
    explicit Deadline(Clock::time_point at) : at_(at), armed_(true) {}

    static Deadline
    after(std::chrono::milliseconds d)
    {
        return Deadline(Clock::now() + d);
    }

    bool armed() const { return armed_; }

    bool
    expired() const
    {
        return armed_ && Clock::now() >= at_;
    }

    /** Time left (clamped at zero); an unarmed deadline reports hours. */
    std::chrono::milliseconds
    remaining() const
    {
        if (!armed_)
            return std::chrono::hours(24 * 365);
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            at_ - Clock::now());
        return left.count() < 0 ? std::chrono::milliseconds(0) : left;
    }

    Clock::time_point at() const { return at_; }

  private:
    Clock::time_point at_{};
    bool armed_ = false;
};

} // namespace cobra

#endif // COBRA_RESILIENCE_CANCEL_H
