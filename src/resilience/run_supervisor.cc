#include "src/resilience/run_supervisor.h"

#include <optional>
#include <sstream>
#include <thread>

#include "src/kernels/kernel.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/resilience/cancel.h"
#include "src/resilience/memory_budget.h"
#include "src/resilience/watchdog.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace cobra {

std::string
SupervisorReport::toString() const
{
    std::ostringstream oss;
    oss << (ok ? "recovered" : "FAILED") << " after " << attempts.size()
        << " attempt(s), " << retries << " retr"
        << (retries == 1 ? "y" : "ies") << ", " << degradations
        << " degradation(s); final: ";
    if (usedBaseline)
        oss << "serial reference";
    else
        oss << to_string(finalEngine.kind) << "/" << finalBins << " bins/"
            << to_string(finalEngine.direction);
    for (const AttemptRecord &a : attempts) {
        oss << "\n  attempt " << a.attempt << " [";
        if (a.baseline)
            oss << "baseline";
        else
            oss << to_string(a.engine.kind) << "/" << a.bins << " bins/"
                << a.engine.wcLines << " wc-line(s)/"
                << to_string(a.engine.direction);
        oss << "] " << (a.outcome.ok() ? "ok" : a.outcome.toString());
        if (a.overflowTuples != 0)
            oss << " (overflow " << a.overflowTuples << ")";
    }
    return oss.str();
}

bool
RunSupervisor::degrade(PbEngineConfig &engine, uint32_t &bins,
                       bool &baseline, ErrorCode why) const
{
    if (baseline)
        return false; // already on the last rung
    if (why == ErrorCode::kResourceExhausted) {
        // Footprint first: a shallower/coarser plan of the *same*
        // engine usually fits where a simpler engine would not.
        if (engine.wcLines > 1) {
            engine.wcLines = 1;
            return true;
        }
        if (bins > cfg_.minBins) {
            bins = std::max(cfg_.minBins, bins / 2);
            engine.coarseBins = 0; // let hier re-derive a balanced split
            return true;
        }
        if (engine.direction != PbDirection::kPull) {
            // Once the plan cannot shrink further, flip the direction:
            // pull Accumulate gathers from the kernel's destination-
            // indexed view and allocates no bin storage at all, so it
            // fits where even the smallest push plan does not.
            engine.direction = PbDirection::kPull;
            return true;
        }
    }
    switch (engine.kind) {
      case PbEngineKind::kWriteCombineSimd:
        engine.kind = PbEngineKind::kWriteCombine;
        return true;
      case PbEngineKind::kHierarchical:
        // Same large-fan-out regime, different mechanism: if the
        // hierarchy itself misbehaved, two-pass radix still reaches the
        // full fine fan-out with tiny per-pass buffer sets before we
        // surrender bin count by dropping to flat WC.
        engine.kind = PbEngineKind::kTwoPass;
        engine.coarseBins = 0; // re-derive the classic sqrt split
        return true;
      case PbEngineKind::kTwoPass:
        engine.kind = PbEngineKind::kWriteCombine;
        return true;
      case PbEngineKind::kWriteCombine:
        engine.kind = PbEngineKind::kScalar;
        return true;
      case PbEngineKind::kScalar:
        if (cfg_.allowBaselineFallback) {
            baseline = true;
            return true;
        }
        return false;
    }
    return false;
}

SupervisorReport
RunSupervisor::runPbParallel(Kernel &kernel, ThreadPool &pool,
                             PhaseRecorder &rec, uint32_t bins,
                             PbEngineConfig engine)
{
    SupervisorReport report;
    Rng jitter(cfg_.retry.seed);
    bool baseline = false;
    MetricsRegistry *reg = MetricsRegistry::active();

    const uint32_t max_attempts = std::max(1u, cfg_.retry.maxAttempts);
    for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
        // The overall (client) deadline bounds the whole ladder: clamp
        // this attempt's watchdog to the remaining budget, and stop
        // retrying entirely once the budget is spent — a degraded rung
        // the client will never wait for is wasted work.
        std::chrono::milliseconds attempt_deadline = cfg_.deadline;
        if (cfg_.overallDeadline) {
            const auto remaining =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    *cfg_.overallDeadline -
                    std::chrono::steady_clock::now());
            if (remaining.count() <= 0) {
                report.finalStatus = Status(
                    ErrorCode::kDeadlineExceeded,
                    kernel.name() +
                        ": overall deadline expired before attempt " +
                        std::to_string(attempt));
                break;
            }
            attempt_deadline = attempt_deadline.count() > 0
                                   ? std::min(attempt_deadline, remaining)
                                   : remaining;
        }
        // Phase brackets of abandoned attempts are dropped: after the
        // loop the recorder holds exactly the final attempt's phases.
        if (attempt > 1)
            rec.clear();
        AttemptRecord rec_a;
        rec_a.attempt = attempt;
        rec_a.engine = engine;
        rec_a.bins = bins;
        rec_a.baseline = baseline;

        TraceSpan sp("supervisor.attempt", "resilience");
        sp.arg("attempt", attempt);
        sp.arg("engine", static_cast<uint64_t>(engine.kind));
        sp.arg("bins", bins);
        if (reg)
            reg->counter("resilience.attempts")->inc();

        Timer t;
        {
            // Scope order matters: the Watchdog is destroyed (joined)
            // before the token scope ends, and binner allocations made
            // by the kernel live strictly inside the budget scope.
            CancelToken token;
            CancelToken::Scope token_scope(token);
            std::optional<MemoryBudget> budget;
            std::optional<MemoryBudget::Scope> budget_scope;
            if (cfg_.memBudgetBytes != 0) {
                budget.emplace(cfg_.memBudgetBytes);
                budget_scope.emplace(*budget);
            }
            Watchdog wd(token);
            if (attempt_deadline.count() > 0) {
                std::ostringstream what;
                what << kernel.name() << " supervised attempt " << attempt;
                wd.arm(attempt_deadline, what.str());
            }
            try {
                if (baseline) {
                    // Last rung: the serial reference. No binning
                    // memory, no pool — and no checkpoints, so the
                    // watchdog cannot interrupt it (see watchdog.h).
                    ExecCtx ctx;
                    kernel.runBaseline(ctx, rec);
                } else {
                    kernel.runPbParallel(pool, rec, bins, engine);
                }
            } catch (const Error &e) {
                rec_a.outcome = Status::FromError(e);
                // The exception unwound between begin()/end(): drop the
                // partial phase so the next attempt can bracket anew.
                rec.abandonOpenPhase();
            }
            wd.disarm();
        }

        if (rec_a.outcome.ok() && !baseline) {
            // Conservation verdict of the parallel runner (dropped /
            // duplicated / overflowed tuples at the phase barrier).
            if (Status h = kernel.lastRunHealth(); !h.ok())
                rec_a.outcome = h;
            rec_a.overflowTuples = kernel.lastOverflowTuples();
        }
        if (rec_a.outcome.ok()) {
            // Oracle certification: element-level comparison against
            // the kernel's serial golden reference.
            if (auto d = kernel.firstDivergence()) {
                std::ostringstream oss;
                oss << "output diverges from the serial reference at "
                       "element "
                    << d->element << " (expected " << d->expected
                    << ", got " << d->actual << "): " << d->detail;
                rec_a.outcome = Status(ErrorCode::kDataLoss, oss.str());
            }
        }
        rec_a.seconds = t.seconds();
        report.attempts.push_back(rec_a);

        if (rec_a.outcome.ok()) {
            report.ok = true;
            report.finalStatus = Status::Ok();
            break;
        }
        report.finalStatus = rec_a.outcome;
        if (!RetryPolicy::isRetryable(rec_a.outcome.code()))
            break;
        if (attempt == max_attempts)
            break;

        warn("supervised " + kernel.name() + " attempt " +
             std::to_string(attempt) + " failed (" +
             rec_a.outcome.toString() + "); retrying degraded");
        if (degrade(engine, bins, baseline, rec_a.outcome.code())) {
            ++report.degradations;
            if (reg)
                reg->counter("resilience.degradations")->inc();
        }
        ++report.retries;
        if (reg)
            reg->counter("resilience.retries")->inc();
        auto delay = cfg_.retry.delayFor(attempt + 1, jitter);
        if (cfg_.overallDeadline) {
            // Never sleep past the overall deadline: clamp so the next
            // iteration's budget check fires promptly instead of the
            // backoff itself blowing the client's contract.
            const auto remaining =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    *cfg_.overallDeadline -
                    std::chrono::steady_clock::now());
            delay = std::min(delay, std::max(remaining,
                                             std::chrono::milliseconds(0)));
        }
        if (delay.count() > 0)
            std::this_thread::sleep_for(delay);
    }

    report.usedBaseline =
        !report.attempts.empty() && report.attempts.back().baseline;
    report.finalEngine = engine;
    report.finalBins = bins;
    if (reg && !report.ok)
        reg->counter("resilience.failures")->inc();
    return report;
}

} // namespace cobra
