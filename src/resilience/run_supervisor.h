/**
 * @file
 * RunSupervisor: retry-with-degradation around Kernel::runPbParallel.
 *
 * The supervisor is the recovery layer the ROADMAP's serving story
 * needs: it wraps one native parallel PB execution with
 *
 *  - a Watchdog-armed deadline (a stalled shard becomes a typed
 *    kDeadlineExceeded error at the next cancellation checkpoint,
 *    never a hang),
 *  - a MemoryBudget (an over-budget plan becomes kResourceExhausted
 *    before the allocator is even asked),
 *  - a RetryPolicy-driven attempt loop that, on every *recoverable*
 *    failure, re-runs with a degraded engine configuration:
 *
 *        wc-simd -> wc -> scalar -> serial reference (runBaseline)
 *
 *    (kHierarchical re-enters the ladder at wc). kResourceExhausted
 *    additionally shrinks the footprint first — WC depth to one line,
 *    then halving the bin count down to a floor — before stepping the
 *    engine down, because a smaller plan usually fits where a simpler
 *    engine would not be faster.
 *
 * Every attempt's result (including the final rung's) is re-verified
 * against the kernel's serial golden reference via the differential
 * oracle's element-level hook (Kernel::firstDivergence) plus the
 * parallel runner's conservation verdict (Kernel::lastRunHealth), so a
 * "recovered" run is only reported ok when it is certified identical
 * to the reference — a supervisor that silently returned corrupt
 * results would be worse than one that failed loudly.
 *
 * Metrics (when a MetricsRegistry is installed): resilience.attempts,
 * resilience.retries, resilience.degradations, plus the Watchdog's
 * watchdog.trips; each attempt is bracketed by a supervisor.attempt
 * trace span.
 */

#ifndef COBRA_RESILIENCE_RUN_SUPERVISOR_H
#define COBRA_RESILIENCE_RUN_SUPERVISOR_H

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/pb/engine_config.h"
#include "src/resilience/retry_policy.h"
#include "src/util/error.h"

namespace cobra {

class Kernel;
class PhaseRecorder;
class ThreadPool;

/** Knobs for one supervised run. */
struct SupervisorConfig
{
    /** Per-attempt watchdog deadline; 0 disables the watchdog. */
    std::chrono::milliseconds deadline{0};

    /**
     * Absolute wall-clock bound across the *whole* run — every attempt
     * plus the backoff sleeps between them. This is the client-facing
     * contract the batch server propagates from a request deadline:
     * each attempt's watchdog is clamped to the remaining overall
     * budget (so a stalled shard surfaces as kDeadlineExceeded before
     * the client gives up, and the degradation ladder keeps running
     * only while time remains), backoff never overshoots it, and once
     * it expires between attempts the run fails kDeadlineExceeded
     * without another try. Unset = unbounded (the historical CLI
     * behaviour).
     */
    std::optional<std::chrono::steady_clock::time_point> overallDeadline;

    /** Attempt/backoff schedule. */
    RetryPolicy retry;

    /** Per-attempt aligned-allocation budget in bytes; 0 = unlimited. */
    uint64_t memBudgetBytes = 0;

    /**
     * Allow the last ladder rung: the kernel's serial reference
     * (runBaseline), which needs no binning memory and no pool — the
     * PHI-style "degrade to plain updates" endpoint.
     */
    bool allowBaselineFallback = true;

    /** Floor for the bin-halving footprint degradation. */
    uint32_t minBins = 16;
};

/** What one attempt ran and how it ended. */
struct AttemptRecord
{
    uint32_t attempt = 0; ///< 1-based
    PbEngineConfig engine;
    uint32_t bins = 0;
    bool baseline = false; ///< serial-reference rung (engine unused)
    Status outcome;        ///< ok, or why the attempt failed
    double seconds = 0.0;
    uint64_t overflowTuples = 0;
};

/** Full history of one supervised run. */
struct SupervisorReport
{
    bool ok = false;
    Status finalStatus;
    std::vector<AttemptRecord> attempts;
    uint32_t retries = 0;      ///< attempts beyond the first
    uint32_t degradations = 0; ///< config downgrades applied
    bool usedBaseline = false; ///< final result came from the serial rung
    PbEngineConfig finalEngine;
    uint32_t finalBins = 0;

    std::string toString() const;
};

/** Drives supervised executions of Kernel::runPbParallel. */
class RunSupervisor
{
  public:
    explicit RunSupervisor(SupervisorConfig cfg) : cfg_(cfg) {}

    /**
     * Run @p kernel's native parallel PB under the configured deadline,
     * budget, and retry ladder, starting from (@p bins, @p engine).
     * Returns the attempt history; report.ok means the final attempt's
     * output is oracle-certified identical to the serial reference.
     * Throws only on unrecoverable *non*-cobra exceptions (internal
     * bugs); every cobra::Error becomes an AttemptRecord outcome.
     */
    SupervisorReport runPbParallel(Kernel &kernel, ThreadPool &pool,
                                   PhaseRecorder &rec, uint32_t bins,
                                   PbEngineConfig engine = {});

    const SupervisorConfig &config() const { return cfg_; }

  private:
    /**
     * Step the degradation ladder in place. Returns false when no
     * further degradation exists (the ladder is exhausted).
     */
    bool degrade(PbEngineConfig &engine, uint32_t &bins, bool &baseline,
                 ErrorCode why) const;

    SupervisorConfig cfg_;
};

} // namespace cobra

#endif // COBRA_RESILIENCE_RUN_SUPERVISOR_H
