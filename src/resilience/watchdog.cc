#include "src/resilience/watchdog.h"

#include <sstream>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cobra {

Watchdog::Watchdog(CancelToken &token)
    : token_(token), thread_([this] { loop(); })
{
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
Watchdog::arm(std::chrono::milliseconds timeout, std::string what)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        deadlineAt_ = std::chrono::steady_clock::now() + timeout;
        timeout_ = timeout;
        what_ = std::move(what);
        ++generation_;
        armed_ = true;
    }
    cv_.notify_all();
}

void
Watchdog::disarm()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        armed_ = false;
        ++generation_;
    }
    cv_.notify_all();
}

void
Watchdog::loop()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cv_.wait(lk, [this] { return stop_ || armed_; });
        if (stop_)
            return;
        const uint64_t gen = generation_;
        const auto at = deadlineAt_;
        // Wakes early on disarm/re-arm/stop (generation change); a
        // plain timeout with the generation intact means a real trip.
        if (cv_.wait_until(lk, at, [this, gen] {
                return stop_ || generation_ != gen;
            })) {
            if (stop_)
                return;
            continue;
        }
        armed_ = false;
        std::ostringstream oss;
        oss << what_ << " exceeded its " << timeout_.count()
            << " ms deadline";
        const std::string reason = oss.str();
        lk.unlock();
        token_.cancel(ErrorCode::kDeadlineExceeded, reason);
        trips_.fetch_add(1, std::memory_order_relaxed);
        if (MetricsRegistry *reg = MetricsRegistry::active())
            reg->counter("watchdog.trips")->inc();
        if (TraceSession *ts = TraceSession::active())
            ts->instant("watchdog.trip", "resilience");
        lk.lock();
    }
}

} // namespace cobra
