#include "src/graph/csr.h"

#include "src/util/error.h"
#include "src/util/prefix_sum.h"

namespace cobra {

namespace {

CsrGraph
buildImpl(NodeId num_nodes, const EdgeList &el, bool transpose)
{
    std::vector<EdgeOffset> degrees(num_nodes, 0);
    for (const Edge &e : el) {
        NodeId s = transpose ? e.dst : e.src;
        COBRA_FATAL_IF(s >= num_nodes || (transpose ? e.src : e.dst) >=
                           num_nodes,
                       "edge endpoint out of range");
        ++degrees[s];
    }
    std::vector<EdgeOffset> offsets = exclusivePrefixSum(degrees);
    std::vector<EdgeOffset> cursor(offsets.begin(), offsets.end() - 1);
    std::vector<NodeId> neighs(el.size());
    for (const Edge &e : el) {
        NodeId s = transpose ? e.dst : e.src;
        NodeId d = transpose ? e.src : e.dst;
        neighs[cursor[s]++] = d;
    }
    return CsrGraph(std::move(offsets), std::move(neighs));
}

} // namespace

CsrGraph
CsrGraph::build(NodeId num_nodes, const EdgeList &el)
{
    return buildImpl(num_nodes, el, /*transpose=*/false);
}

CsrGraph
CsrGraph::buildTranspose(NodeId num_nodes, const EdgeList &el)
{
    return buildImpl(num_nodes, el, /*transpose=*/true);
}

EdgeList
toEdgeList(const CsrGraph &g)
{
    EdgeList el;
    el.reserve(g.numEdges());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        for (NodeId n : g.neighbors(v))
            el.push_back(Edge{v, n});
    return el;
}

} // namespace cobra
