#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/bitops.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace cobra {

EdgeList
generateUniform(NodeId num_nodes, uint64_t num_edges, uint64_t seed)
{
    COBRA_FATAL_IF(num_nodes == 0, "empty graph");
    Rng rng(seed);
    EdgeList el;
    el.reserve(num_edges);
    for (uint64_t i = 0; i < num_edges; ++i) {
        NodeId s = static_cast<NodeId>(rng.below(num_nodes));
        NodeId d = static_cast<NodeId>(rng.below(num_nodes));
        el.push_back(Edge{s, d});
    }
    return el;
}

EdgeList
generateRmat(NodeId num_nodes, uint64_t num_edges, uint64_t seed, double a,
             double b, double c)
{
    COBRA_FATAL_IF(num_nodes == 0, "empty graph");
    COBRA_FATAL_IF(a + b + c >= 1.0, "RMAT probabilities must sum < 1");
    const uint32_t levels = ceilLog2(num_nodes);
    Rng rng(seed);
    EdgeList el;
    el.reserve(num_edges);
    while (el.size() < num_edges) {
        NodeId s = 0, d = 0;
        for (uint32_t l = 0; l < levels; ++l) {
            double p = rng.uniform();
            // Add a little per-level noise so the degree distribution is
            // smoother than pure Kronecker (standard practice).
            double aa = a + 0.05 * (rng.uniform() - 0.5);
            double bb = b, cc = c;
            s <<= 1;
            d <<= 1;
            if (p < aa) {
                // top-left quadrant: no bits set
            } else if (p < aa + bb) {
                d |= 1;
            } else if (p < aa + bb + cc) {
                s |= 1;
            } else {
                s |= 1;
                d |= 1;
            }
        }
        if (s < num_nodes && d < num_nodes)
            el.push_back(Edge{s, d});
    }
    return el;
}

EdgeList
generateRoad(NodeId num_nodes, uint32_t degree, NodeId locality,
             uint64_t seed)
{
    COBRA_FATAL_IF(num_nodes < 2 * locality + 2, "road graph too small");
    Rng rng(seed);
    EdgeList el;
    el.reserve(static_cast<uint64_t>(num_nodes) * degree);
    for (NodeId v = 0; v < num_nodes; ++v) {
        for (uint32_t k = 0; k < degree; ++k) {
            // Destination within +-locality of v (never v itself).
            int64_t delta =
                static_cast<int64_t>(rng.below(2 * locality)) - locality;
            if (delta >= 0)
                ++delta;
            int64_t d = static_cast<int64_t>(v) + delta;
            d = (d % num_nodes + num_nodes) % num_nodes;
            el.push_back(Edge{v, static_cast<NodeId>(d)});
        }
    }
    return el;
}

void
shuffleVertexIds(EdgeList &el, NodeId num_nodes, uint64_t seed)
{
    std::vector<NodeId> perm(num_nodes);
    std::iota(perm.begin(), perm.end(), 0);
    Rng rng(seed);
    for (NodeId i = num_nodes; i > 1; --i)
        std::swap(perm[i - 1], perm[rng.below(i)]);
    for (Edge &e : el) {
        e.src = perm[e.src];
        e.dst = perm[e.dst];
    }
}

void
shuffleEdgeOrder(EdgeList &el, uint64_t seed)
{
    Rng rng(seed);
    for (size_t i = el.size(); i > 1; --i)
        std::swap(el[i - 1], el[rng.below(i)]);
}

EdgeList
generateZipf(NodeId num_nodes, uint64_t num_edges, double alpha,
             uint64_t seed)
{
    COBRA_FATAL_IF(num_nodes == 0, "empty graph");
    COBRA_FATAL_IF(alpha < 0.0, "zipf alpha must be >= 0");
    // Cumulative rank weights w_r = 1/(r+1)^alpha; one binary search
    // per edge inverts the CDF. alpha = 0 gives equal weights (uniform).
    std::vector<double> cum(num_nodes);
    double total = 0.0;
    for (NodeId r = 0; r < num_nodes; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r) + 1.0, alpha);
        cum[r] = total;
    }
    // Rank -> vertex bijection: multiply by a constant coprime to the
    // namespace size. Keeps each rank's probability mass intact while
    // scattering the heavy ranks across the bin space.
    uint64_t mult = 2654435761ull % num_nodes; // Knuth's multiplier
    if (mult == 0)
        mult = 1;
    while (std::gcd(mult, static_cast<uint64_t>(num_nodes)) != 1)
        ++mult;
    Rng rng(seed);
    EdgeList el;
    el.reserve(num_edges);
    for (uint64_t i = 0; i < num_edges; ++i) {
        const double u = rng.uniform() * total;
        const auto it = std::lower_bound(cum.begin(), cum.end(), u);
        const uint64_t rank = static_cast<uint64_t>(
            std::min<ptrdiff_t>(it - cum.begin(), num_nodes - 1));
        const NodeId src =
            static_cast<NodeId>((rank * mult) % num_nodes);
        const NodeId dst = static_cast<NodeId>(rng.below(num_nodes));
        el.push_back(Edge{src, dst});
    }
    return el;
}

EdgeList
generateRmatStream(NodeId num_nodes, uint64_t num_edges, uint64_t seed,
                   double a, double b, double c)
{
    COBRA_FATAL_IF(num_nodes == 0, "empty graph");
    COBRA_FATAL_IF(a + b + c >= 1.0, "RMAT probabilities must sum < 1");
    const uint32_t levels = ceilLog2(num_nodes);
    // Source marginal of the quadrant draw: a bit of s is set when the
    // draw lands in the bottom half, P = c + d.
    const double d = 1.0 - a - b - c;
    // Same scatter bijection as generateZipf (see the comment there).
    uint64_t mult = 2654435761ull % num_nodes;
    if (mult == 0)
        mult = 1;
    while (std::gcd(mult, static_cast<uint64_t>(num_nodes)) != 1)
        ++mult;
    Rng rng(seed);
    EdgeList el;
    el.reserve(num_edges);
    while (el.size() < num_edges) {
        NodeId s = 0;
        for (uint32_t l = 0; l < levels; ++l) {
            // Per-level noise as in generateRmat, so the marginal stays
            // smoother than pure Kronecker.
            const double pc = (c + d) + 0.05 * (rng.uniform() - 0.5);
            s <<= 1;
            if (rng.uniform() < pc)
                s |= 1;
        }
        if (s >= num_nodes)
            continue; // rejection keeps the marginal shape intact
        const NodeId src = static_cast<NodeId>(
            (static_cast<uint64_t>(s) * mult) % num_nodes);
        const NodeId dst = static_cast<NodeId>(rng.below(num_nodes));
        el.push_back(Edge{src, dst});
    }
    return el;
}

std::vector<uint32_t>
generateKeys(uint64_t num_keys, uint32_t max_key, uint64_t seed)
{
    COBRA_FATAL_IF(max_key == 0, "max_key must be nonzero");
    Rng rng(seed);
    std::vector<uint32_t> keys(num_keys);
    for (auto &k : keys)
        k = static_cast<uint32_t>(rng.below(max_key));
    return keys;
}

} // namespace cobra
