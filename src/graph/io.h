/**
 * @file
 * Graph file I/O: text edgelists (the GAP/Graph500 ".el" convention),
 * a compact binary edgelist format, and binary CSR serialization so a
 * once-converted graph loads without re-running Edgelist-to-CSR.
 */

#ifndef COBRA_GRAPH_IO_H
#define COBRA_GRAPH_IO_H

#include <iosfwd>
#include <string>

#include "src/graph/csr.h"
#include "src/graph/types.h"
#include "src/util/error.h"

namespace cobra {

/**
 * Read a text edgelist: one "src dst" pair per line; '#' or '%' lines
 * are comments (SNAP / Matrix-Market-ish headers). Returns the edges;
 * @p num_nodes is set to 1 + the largest endpoint seen.
 */
EdgeList loadEdgeListText(const std::string &path, NodeId *num_nodes);

/** Write a text edgelist. */
void saveEdgeListText(const std::string &path, const EdgeList &el);

/**
 * Binary edgelist (".bel"): little-endian header {magic, numNodes,
 * numEdges} followed by numEdges (u32 src, u32 dst) pairs.
 */
EdgeList loadEdgeListBinary(const std::string &path, NodeId *num_nodes);
void saveEdgeListBinary(const std::string &path, NodeId num_nodes,
                        const EdgeList &el);

/**
 * Binary CSR (".csr"): header {magic, numNodes, numEdges}, then
 * numNodes+1 u64 offsets, then numEdges u32 neighbors.
 */
CsrGraph loadCsrBinary(const std::string &path);
void saveCsrBinary(const std::string &path, const CsrGraph &g);

/**
 * Stream-level CSR block (no file magic): {numNodes u64, numEdges
 * u64}, then numNodes+1 u64 offsets, then numEdges u32 neighbors.
 * saveCsrBinary/loadCsrBinary wrap one block with the file magic; the
 * durability checkpoint (src/durability/checkpoint.cc) embeds one
 * block per tenant, so the hardened CSR reader below is the single
 * parser for both containers.
 */
void writeCsrStream(std::ostream &os, const CsrGraph &g);

/**
 * Read and fully validate one CSR block from @p is. @p budget_bytes
 * bounds what the declared counts may claim (the bytes remaining in
 * the enclosing file), so a corrupt header cannot size a pathological
 * allocation. Throws the error model below; on success @p consumed
 * (if non-null) receives the block's exact byte size.
 */
CsrGraph readCsrStream(std::istream &is, const std::string &path,
                       uint64_t budget_bytes,
                       uint64_t *consumed = nullptr);

/**
 * Error model: the loaders above throw cobra::Error —
 *  - kIoError       file cannot be opened,
 *  - kCorruptFile   bad magic, malformed line, truncated or oversized
 *                   payload, header/payload inconsistency, or a
 *                   numEdges/numNodes that cannot fit in the file,
 *  - kOutOfRange    an edge endpoint or CSR neighbor >= numNodes.
 * The tryLoad* forms below catch those and return a Status instead, for
 * callers (tools, long-running services) that must not unwind.
 */
Status tryLoadEdgeListText(const std::string &path, EdgeList *out,
                           NodeId *num_nodes) noexcept;
Status tryLoadEdgeListBinary(const std::string &path, EdgeList *out,
                             NodeId *num_nodes) noexcept;
Status tryLoadCsrBinary(const std::string &path, CsrGraph *out) noexcept;

} // namespace cobra

#endif // COBRA_GRAPH_IO_H
