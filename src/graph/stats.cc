#include "src/graph/stats.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace cobra {

GraphStats
computeGraphStats(const CsrGraph &g)
{
    GraphStats s;
    s.numNodes = g.numNodes();
    s.numEdges = g.numEdges();
    if (s.numNodes == 0)
        return s;
    s.avgDegree = static_cast<double>(s.numEdges) / s.numNodes;

    std::vector<EdgeOffset> degrees(s.numNodes);
    uint64_t zero = 0;
    for (NodeId v = 0; v < s.numNodes; ++v) {
        degrees[v] = g.degree(v);
        s.maxDegree = std::max(s.maxDegree, degrees[v]);
        zero += degrees[v] == 0 ? 1 : 0;
    }
    s.zeroDegreeShare = static_cast<double>(zero) / s.numNodes;

    std::sort(degrees.begin(), degrees.end());
    // Top-1% edge share.
    const size_t top = std::max<size_t>(1, degrees.size() / 100);
    uint64_t top_edges = 0;
    for (size_t i = degrees.size() - top; i < degrees.size(); ++i)
        top_edges += degrees[i];
    s.top1PercentEdgeShare = s.numEdges
        ? static_cast<double>(top_edges) / s.numEdges
        : 0.0;

    // Gini coefficient from the sorted distribution:
    // G = (2 * sum(i * d_i) / (n * sum(d))) - (n + 1) / n.
    if (s.numEdges > 0) {
        long double weighted = 0;
        for (size_t i = 0; i < degrees.size(); ++i)
            weighted += static_cast<long double>(i + 1) * degrees[i];
        long double n = degrees.size();
        s.degreeGini = static_cast<double>(
            2.0L * weighted / (n * static_cast<long double>(s.numEdges)) -
            (n + 1) / n);
    }

    // Mean normalized ring distance between edge endpoints.
    if (s.numEdges > 0) {
        long double acc = 0;
        for (NodeId v = 0; v < s.numNodes; ++v) {
            for (NodeId u : g.neighbors(v)) {
                uint64_t d = v > u ? v - u : u - v;
                d = std::min<uint64_t>(d, s.numNodes - d);
                acc += d;
            }
        }
        s.meanIndexDistance = static_cast<double>(
            acc / static_cast<long double>(s.numEdges) /
            (static_cast<long double>(s.numNodes) / 2.0L));
    }
    return s;
}

void
GraphStats::print(std::ostream &os, const std::string &name) const
{
    os << name << ": n=" << numNodes << " m=" << numEdges
       << " avg_deg=" << avgDegree << " max_deg=" << maxDegree
       << " top1%share=" << top1PercentEdgeShare
       << " gini=" << degreeGini
       << " locality=" << meanIndexDistance
       << " zero_deg=" << zeroDegreeShare << "\n";
}

} // namespace cobra
