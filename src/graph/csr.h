/**
 * @file
 * Compressed Sparse Row graph (paper Figure 1).
 *
 * Two arrays represent the outgoing edges sorted by source: the Offsets
 * Array (OA) stores, for each vertex, the start of its neighborhood in
 * the Neighbors Array (NA), which stores all neighbor IDs contiguously.
 * Traversing the NA and indexing a second array by its contents is the
 * canonical irregular-update pattern this whole library is about.
 */

#ifndef COBRA_GRAPH_CSR_H
#define COBRA_GRAPH_CSR_H

#include <span>
#include <vector>

#include "src/graph/types.h"

namespace cobra {

/** CSR (out-edges) or CSC (in-edges, via buildTranspose) graph. */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /** Adopt prebuilt arrays; offsets.size() must be numNodes()+1. */
    CsrGraph(std::vector<EdgeOffset> offsets_, std::vector<NodeId> neighs_)
        : offsets(std::move(offsets_)), neighs(std::move(neighs_))
    {
    }

    /**
     * Reference (serial, trusted) builder from an edgelist; the PB and
     * COBRA Edgelist-to-CSR kernels are verified against this.
     */
    static CsrGraph build(NodeId num_nodes, const EdgeList &el);

    /** Build the transpose (CSC): edge (s,d) becomes (d,s). */
    static CsrGraph buildTranspose(NodeId num_nodes, const EdgeList &el);

    NodeId
    numNodes() const
    {
        return offsets.empty() ? 0 : static_cast<NodeId>(offsets.size() - 1);
    }

    EdgeOffset numEdges() const { return offsets.empty() ? 0 : offsets.back(); }

    EdgeOffset offset(NodeId v) const { return offsets[v]; }

    EdgeOffset
    degree(NodeId v) const
    {
        return offsets[v + 1] - offsets[v];
    }

    std::span<const NodeId>
    neighbors(NodeId v) const
    {
        return {neighs.data() + offsets[v],
                static_cast<size_t>(degree(v))};
    }

    const std::vector<EdgeOffset> &offsetsArray() const { return offsets; }
    const std::vector<NodeId> &neighborsArray() const { return neighs; }

    /** Equality of structure (useful in kernel-correctness tests). */
    bool
    operator==(const CsrGraph &o) const
    {
        return offsets == o.offsets && neighs == o.neighs;
    }

  private:
    std::vector<EdgeOffset> offsets; ///< OA, numNodes+1 entries
    std::vector<NodeId> neighs;      ///< NA, numEdges entries
};

/** Flatten a CSR back to an edgelist (test helper). */
EdgeList toEdgeList(const CsrGraph &g);

} // namespace cobra

#endif // COBRA_GRAPH_CSR_H
