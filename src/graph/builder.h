/**
 * @file
 * Reference Edgelist-to-CSR pipeline pieces.
 *
 * Edgelist-to-CSR conversion is dominated by two irregular-update kernels
 * (paper Section VI): Degree-Counting (commutative increments) and
 * Neighbor-Populate (non-commutative cursor bumps, paper Algorithm 1).
 * The instrumented baseline/PB/COBRA versions live in src/kernels; the
 * functions here are the trusted serial references used for verification.
 */

#ifndef COBRA_GRAPH_BUILDER_H
#define COBRA_GRAPH_BUILDER_H

#include <vector>

#include "src/graph/csr.h"
#include "src/graph/types.h"

namespace cobra {

/** degrees[v] = out-degree of v. */
std::vector<EdgeOffset> countDegreesRef(NodeId num_nodes,
                                        const EdgeList &el);

/**
 * Paper Algorithm 1: given the offsets array (exclusive prefix sum of
 * degrees), place each edge's dst into the neighbors array, bumping the
 * per-source cursor. Consumes a copy of @p offsets (the kernel mutates
 * it). Returns the neighbors array.
 */
std::vector<NodeId> populateNeighborsRef(const std::vector<EdgeOffset>
                                             &offsets,
                                         const EdgeList &el);

/**
 * Canonicalize a CSR's per-vertex neighbor lists by sorting them —
 * Neighbor-Populate permits any intra-neighborhood order (that is what
 * makes it unordered-parallel), so equality checks compare sorted forms.
 */
CsrGraph sortNeighborhoods(const CsrGraph &g);

/**
 * Trusted serial builder of the *canonical simple-graph* CSR: sorted
 * neighbor lists with duplicate edges collapsed. This is the unique
 * byte representation of an edge set, which is what makes it the
 * reference DynamicGraph::snapshotCsr() must match byte-for-byte.
 */
CsrGraph buildSortedDedupRef(NodeId num_nodes, const EdgeList &el);

} // namespace cobra

#endif // COBRA_GRAPH_BUILDER_H
