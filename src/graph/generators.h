/**
 * @file
 * Synthetic graph generators covering the paper's three input classes
 * (Table III): power-law (KRON/TWIT/DBPD-like), uniform-random (URND),
 * and bounded-degree/high-locality (ROAD/EURO-like). Degree distribution
 * and index-locality class are what drive PB and COBRA behaviour, so
 * generators parameterized over these classes stand in for the paper's
 * public inputs (DESIGN.md Section 5).
 */

#ifndef COBRA_GRAPH_GENERATORS_H
#define COBRA_GRAPH_GENERATORS_H

#include <cstdint>

#include "src/graph/types.h"

namespace cobra {

/** Uniform-random directed multigraph: m edges with iid endpoints. */
EdgeList generateUniform(NodeId num_nodes, uint64_t num_edges,
                         uint64_t seed = 1);

/**
 * RMAT/Kronecker power-law generator (Graph500 parameters a=0.57,
 * b=c=0.19 by default). @p num_nodes is rounded up to a power of two by
 * the recursion but returned edges only use [0, num_nodes).
 */
EdgeList generateRmat(NodeId num_nodes, uint64_t num_edges,
                      uint64_t seed = 1, double a = 0.57, double b = 0.19,
                      double c = 0.19);

/**
 * Bounded-degree, high-locality "road network" analog: vertices on a
 * ring, each connected to @p degree neighbors within a window of
 * @p locality positions. Mimics EURO/ROAD's bounded degree distribution
 * and short-range index locality.
 */
EdgeList generateRoad(NodeId num_nodes, uint32_t degree = 4,
                      NodeId locality = 16, uint64_t seed = 1);

/**
 * Random permutation of vertex IDs applied to an edgelist — used to
 * destroy the locality that generators can accidentally introduce
 * (public-graph vertex orderings are arbitrary).
 */
void shuffleVertexIds(EdgeList &el, NodeId num_nodes, uint64_t seed = 7);

/**
 * Randomly permute the *order* of edges (not the vertex IDs) — edge
 * files on disk are rarely sorted by source, and a sorted edgelist would
 * give src-indexed kernels artificial streaming locality.
 */
void shuffleEdgeOrder(EdgeList &el, uint64_t seed = 5);

/** Uniformly random sort keys in [0, max_key) (Integer Sort input). */
std::vector<uint32_t> generateKeys(uint64_t num_keys, uint32_t max_key,
                                   uint64_t seed = 1);

/**
 * Zipf-skewed update stream: edge *sources* (the index stream PB bins)
 * follow a Zipf(alpha) rank distribution — rank r drawn with probability
 * proportional to 1/r^alpha — and destinations are uniform. alpha = 0
 * degenerates to uniform; 0.6/0.8/1.0 span mild to heavy power-law
 * skew (web/social graph territory). Ranks are scattered over the
 * vertex namespace with a fixed bijection (odd-multiplier hash) so the
 * hot vertices land in *different* PB bins rather than all in bin 0 —
 * without it, Zipf skew and bin-range locality would be conflated.
 */
EdgeList generateZipf(NodeId num_nodes, uint64_t num_edges, double alpha,
                      uint64_t seed = 1);

/**
 * RMAT-skewed update stream: edge *sources* follow the RMAT recursive
 * quadrant marginal (Graph500 a=0.57, b=c=0.19 defaults — the
 * Kronecker power-law-with-communities shape), destinations are
 * uniform. The RMAT analog of generateZipf for the skew sweep: where
 * Zipf gives a clean rank law, RMAT gives the clustered bit-prefix
 * skew real Graph500 streams have. Sources go through the same fixed
 * coprime-multiplier bijection, because RMAT's heavy vertices cluster
 * at low ids and would otherwise all land in PB bin 0 — conflating
 * stream skew with bin-range locality.
 */
EdgeList generateRmatStream(NodeId num_nodes, uint64_t num_edges,
                            uint64_t seed = 1, double a = 0.57,
                            double b = 0.19, double c = 0.19);

} // namespace cobra

#endif // COBRA_GRAPH_GENERATORS_H
