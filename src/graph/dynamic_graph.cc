#include "src/graph/dynamic_graph.h"

#include <algorithm>
#include <sstream>

#include "src/check/fault_injector.h"
#include "src/graph/builder.h"
#include "src/util/fnv.h"
#include "src/pb/bin_range.h"
#include "src/pb/parallel_pb.h"

namespace cobra {

DynamicGraph::DynamicGraph(NodeId num_nodes)
    : nodes_(num_nodes), delta_(num_nodes), degree_(num_nodes, 0)
{
    base_ = CsrGraph(std::vector<EdgeOffset>(num_nodes + 1, 0), {});
}

DynamicGraph::DynamicGraph(NodeId num_nodes, const EdgeList &base)
    : nodes_(num_nodes), delta_(num_nodes), degree_(num_nodes, 0)
{
    base_ = buildSortedDedupRef(num_nodes, base);
    for (NodeId v = 0; v < nodes_; ++v)
        degree_[v] = base_.degree(v);
    liveEdges_ = base_.numEdges();
}

DynamicGraph::DynamicGraph(CsrGraph base)
    : nodes_(base.numNodes()), delta_(base.numNodes()),
      degree_(base.numNodes(), 0)
{
    for (NodeId v = 0; v < nodes_; ++v) {
        const auto row = base.neighbors(v);
        for (size_t i = 1; i < row.size(); ++i)
            COBRA_THROW_IF(row[i - 1] >= row[i], ErrorCode::kCorruptFile,
                           "adopted CSR row " << v
                               << " is not sorted+unique at position "
                               << i << " — refusing a base snapshot "
                                  "that breaks the merge invariants");
    }
    base_ = std::move(base);
    for (NodeId v = 0; v < nodes_; ++v)
        degree_[v] = base_.degree(v);
    liveEdges_ = base_.numEdges();
}

bool
DynamicGraph::baseHasEdge(NodeId src, NodeId dst) const
{
    const auto row = base_.neighbors(src);
    return std::binary_search(row.begin(), row.end(), dst);
}

bool
DynamicGraph::hasEdge(NodeId src, NodeId dst) const
{
    const auto &d = delta_[src];
    auto it = std::lower_bound(
        d.begin(), d.end(), dst,
        [](const DeltaEntry &e, NodeId v) { return e.dst < v; });
    if (it != d.end() && it->dst == dst)
        return !it->tomb;
    return baseHasEdge(src, dst);
}

std::vector<NodeId>
DynamicGraph::liveNeighbors(NodeId v) const
{
    std::vector<NodeId> out;
    out.reserve(static_cast<size_t>(degree_[v]));
    const auto row = base_.neighbors(v);
    const auto &d = delta_[v];
    size_t bi = 0, di = 0;
    while (bi < row.size() || di < d.size()) {
        if (di == d.size() || (bi < row.size() && row[bi] < d[di].dst)) {
            out.push_back(row[bi++]);
        } else if (bi == row.size() || d[di].dst < row[bi]) {
            // Delta-only entry: a non-tombstone insert (a tombstone
            // always shadows a base edge, so it cannot be delta-only).
            if (!d[di].tomb)
                out.push_back(d[di].dst);
            ++di;
        } else {
            // Same dst on both sides: the delta entry is a tombstone
            // (an insert over a live base edge dedups, never lands).
            if (!d[di].tomb)
                out.push_back(row[bi]);
            ++bi;
            ++di;
        }
    }
    return out;
}

DynamicGraph::OpOutcome
DynamicGraph::applyOp(NodeId src, NodeId dst, bool remove)
{
    auto &d = delta_[src];
    auto it = std::lower_bound(
        d.begin(), d.end(), dst,
        [](const DeltaEntry &e, NodeId v) { return e.dst < v; });
    const bool in_delta = it != d.end() && it->dst == dst;
    const bool in_base = baseHasEdge(src, dst);
    const bool alive = in_delta ? !it->tomb : in_base;

    if (!remove) {
        if (alive)
            return kOutcomeDeduped;
        if (in_delta)
            d.erase(it); // erase the tombstone: back to the base edge
        else
            d.insert(it, DeltaEntry{dst, false});
        ++degree_[src];
        return kOutcomeInserted;
    }
    if (!alive)
        return kOutcomeRejected;
    if (in_delta)
        d.erase(it); // delta-only insert: drop the entry
    else
        d.insert(it, DeltaEntry{dst, true}); // tombstone a base edge
    --degree_[src];
    return kOutcomeRemoved;
}

void
DynamicGraph::recountDelta()
{
    uint64_t n = 0;
    for (const auto &d : delta_)
        n += d.size();
    deltaEntries_ = n;
}

BatchResult
DynamicGraph::reduceOutcomes(const MutationBatch &batch,
                             const std::vector<uint8_t> &outcomes)
{
    BatchResult r;
    uint64_t lost = 0;
    std::vector<NodeId> dsts, srcs;
    for (size_t i = 0; i < batch.ops.size(); ++i) {
        switch (outcomes[i]) {
          case kOutcomeInserted: ++r.inserted; break;
          case kOutcomeRemoved: ++r.removed; break;
          case kOutcomeDeduped: ++r.deduped; break;
          case kOutcomeRejected: ++r.rejected; break;
          default: ++lost; continue;
        }
        if (outcomes[i] == kOutcomeInserted ||
            outcomes[i] == kOutcomeRemoved) {
            dsts.push_back(batch.ops[i].dst);
            srcs.push_back(batch.ops[i].src);
        }
    }
    std::sort(dsts.begin(), dsts.end());
    dsts.erase(std::unique(dsts.begin(), dsts.end()), dsts.end());
    std::sort(srcs.begin(), srcs.end());
    srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
    r.affectedDsts = std::move(dsts);
    r.degreeChangedSrcs = std::move(srcs);

    liveEdges_ += r.inserted;
    liveEdges_ -= r.removed;
    recountDelta();

    if (lost != 0 && health_.ok()) {
        std::ostringstream oss;
        oss << "mutation batch lost " << lost << " of "
            << batch.ops.size() << " ops (never applied)";
        health_ = Status(ErrorCode::kDataLoss, oss.str());
    }
    return r;
}

BatchResult
DynamicGraph::applyBatch(const MutationBatch &batch)
{
    health_ = Status::Ok();
    std::vector<uint8_t> outcomes(batch.ops.size(), kOutcomeLost);
    for (size_t i = 0; i < batch.ops.size(); ++i) {
        const MutationBatch::Op &op = batch.ops[i];
        outcomes[i] =
            static_cast<uint8_t>(applyOp(op.src, op.dst, op.remove));
    }
    return reduceOutcomes(batch, outcomes);
}

BatchResult
DynamicGraph::applyBatchParallel(ThreadPool &pool, PhaseRecorder &rec,
                                 const MutationBatch &batch,
                                 uint32_t max_bins,
                                 const PbEngineConfig &engine)
{
    health_ = Status::Ok();
    if (batch.ops.empty())
        return BatchResult{};

    // The batch is an irregular-update stream keyed by source vertex:
    // bin it like any other. The payload is the op's stream position,
    // so Accumulate can look up the full op and record its outcome
    // into a disjoint slot (per-op bytes, per-source delta segments —
    // no two bins share either).
    BinningPlan plan = BinningPlan::forMaxBins(nodes_, max_bins);
    ParallelPbRunner<uint32_t> runner(pool, plan, engine);
    const auto &ops = batch.ops;
    std::vector<uint8_t> outcomes(ops.size(), kOutcomeLost);
    runner.run(
        ops.size(), rec, [&ops](size_t i) { return ops[i].src; },
        [&ops](size_t i) {
            return std::pair<uint32_t, uint32_t>(
                ops[i].src, static_cast<uint32_t>(i));
        },
        [this, &ops, &outcomes](const BinTuple<uint32_t> &t) {
            const MutationBatch::Op &op = ops[t.payload];
            outcomes[t.payload] =
                static_cast<uint8_t>(applyOp(op.src, op.dst, op.remove));
        });
    health_ = runner.conservation();
    return reduceOutcomes(batch, outcomes);
}

uint64_t
DynamicGraph::mergeLiveEdges(EdgeList &out) const
{
    uint64_t emitted = 0;
    for (NodeId v = 0; v < nodes_; ++v) {
        uint64_t skip = 0;
        if (auto *fi = FaultInjector::active(); fi) [[unlikely]] {
            if (fi->fire(FaultSite::kPbStallAccumulate, v))
                fi->stall();
            if (fi->fire(FaultSite::kPbDropDrain, v))
                continue; // dropped merge: the whole vertex vanishes
            if (fi->fire(FaultSite::kBinOffsetSkew, v))
                skip = fi->skewAmount(); // skewed merge: head lost
        }
        const auto row = base_.neighbors(v);
        const auto &d = delta_[v];
        size_t bi = 0, di = 0;
        auto emit = [&](NodeId dst) {
            if (skip > 0) {
                --skip;
                return;
            }
            out.push_back(Edge{v, dst});
            ++emitted;
        };
        while (bi < row.size() || di < d.size()) {
            if (di == d.size() ||
                (bi < row.size() && row[bi] < d[di].dst)) {
                emit(row[bi++]);
            } else if (bi == row.size() || d[di].dst < row[bi]) {
                if (!d[di].tomb)
                    emit(d[di].dst);
                ++di;
            } else {
                if (!d[di].tomb)
                    emit(row[bi]);
                ++bi;
                ++di;
            }
        }
    }
    return emitted;
}

CsrGraph
DynamicGraph::snapshotCsr() const
{
    std::vector<EdgeOffset> offsets(nodes_ + 1, 0);
    for (NodeId v = 0; v < nodes_; ++v)
        offsets[v + 1] = offsets[v] + degree_[v];
    std::vector<NodeId> neighs;
    neighs.reserve(static_cast<size_t>(liveEdges_));
    for (NodeId v = 0; v < nodes_; ++v)
        for (NodeId dst : liveNeighbors(v))
            neighs.push_back(dst);
    return CsrGraph(std::move(offsets), std::move(neighs));
}

uint64_t
DynamicGraph::snapshotFingerprint() const
{
    // Degree sequence first, then every neighbor in snapshot order —
    // exactly the word stream kSnapshot hashes, without materializing
    // the offsets array.
    std::vector<uint32_t> w;
    w.reserve(static_cast<size_t>(nodes_) +
              static_cast<size_t>(liveEdges_));
    for (NodeId v = 0; v < nodes_; ++v)
        w.push_back(static_cast<uint32_t>(degree_[v]));
    for (NodeId v = 0; v < nodes_; ++v)
        for (NodeId dst : liveNeighbors(v))
            w.push_back(dst);
    return fnv1a(w.data(), w.size());
}

EdgeList
DynamicGraph::toEdgeList() const
{
    EdgeList el;
    el.reserve(static_cast<size_t>(liveEdges_));
    for (NodeId v = 0; v < nodes_; ++v)
        for (NodeId dst : liveNeighbors(v))
            el.push_back(Edge{v, dst});
    return el;
}

bool
DynamicGraph::needsCompaction() const
{
    if (deltaEntries_ == 0)
        return false;
    const uint64_t base = std::max<uint64_t>(base_.numEdges(), 1);
    return static_cast<double>(deltaEntries_) >
           compactRatio_ * static_cast<double>(base);
}

Status
DynamicGraph::compact(ThreadPool &pool, PhaseRecorder &rec,
                      uint32_t max_bins, const PbEngineConfig &engine)
{
    if (deltaEntries_ == 0) {
        health_ = Status::Ok();
        return health_;
    }

    // Merge pass (fault-injectable): the live stream, sorted by source
    // and within each source. Any drop/skew shows up as a count
    // mismatch right here — typed, before the graph is touched.
    EdgeList merged;
    merged.reserve(static_cast<size_t>(liveEdges_));
    const uint64_t emitted = mergeLiveEdges(merged);
    if (emitted != liveEdges_) {
        std::ostringstream oss;
        oss << "compaction merge emitted " << emitted << " of "
            << liveEdges_ << " live edges";
        health_ = Status(ErrorCode::kDataLoss, oss.str());
        return health_;
    }

    // Scatter pass: the NeighborPopulate PB path. Per-source cursors
    // are bin-partitioned (only the owning thread bumps them), and the
    // runner's per-index stream-order guarantee means the sorted
    // stream lands as sorted adjacency — no post-sort.
    std::vector<EdgeOffset> offsets(nodes_ + 1, 0);
    for (NodeId v = 0; v < nodes_; ++v)
        offsets[v + 1] = offsets[v] + degree_[v];
    std::vector<EdgeOffset> cursor(offsets.begin(), offsets.end() - 1);
    std::vector<NodeId> neighs(merged.size());

    BinningPlan plan = BinningPlan::forMaxBins(nodes_, max_bins);
    ParallelPbRunner<NodeId> runner(pool, plan, engine);
    runner.run(
        merged.size(), rec,
        [&merged](size_t i) { return merged[i].src; },
        [&merged](size_t i) {
            return std::pair<uint32_t, NodeId>(merged[i].src,
                                               merged[i].dst);
        },
        [&cursor, &neighs](const BinTuple<NodeId> &t) {
            neighs[cursor[t.index]++] = t.payload;
        });
    if (Status s = runner.conservation(); !s.ok()) {
        health_ = s;
        return health_;
    }
    // Post-invariants: every cursor exhausted its range and every
    // neighborhood is strictly ascending (sorted + deduplicated). A
    // violation here means a scatter seam lost or reordered tuples in
    // a way the runner's totals did not catch.
    for (NodeId v = 0; v < nodes_; ++v) {
        if (cursor[v] != offsets[v + 1]) {
            std::ostringstream oss;
            oss << "compaction cursor for vertex " << v << " stopped at "
                << cursor[v] << ", expected " << offsets[v + 1];
            health_ = Status(ErrorCode::kDataLoss, oss.str());
            return health_;
        }
        for (EdgeOffset i = offsets[v] + 1; i < offsets[v + 1]; ++i) {
            if (neighs[i - 1] >= neighs[i]) {
                std::ostringstream oss;
                oss << "compaction produced unsorted adjacency at vertex "
                    << v;
                health_ = Status(ErrorCode::kDataLoss, oss.str());
                return health_;
            }
        }
    }

    base_ = CsrGraph(std::move(offsets), std::move(neighs));
    for (auto &d : delta_) {
        d.clear();
        d.shrink_to_fit();
    }
    deltaEntries_ = 0;
    ++compactions_;
    health_ = Status::Ok();
    return health_;
}

} // namespace cobra
