/**
 * @file
 * Basic graph types (GAP-benchmark-style CSR building blocks).
 */

#ifndef COBRA_GRAPH_TYPES_H
#define COBRA_GRAPH_TYPES_H

#include <cstdint>
#include <vector>

namespace cobra {

/** Vertex identifier (32-bit, as in the paper's 4B tuple indices). */
using NodeId = uint32_t;

/** Edge count / CSR offset type. */
using EdgeOffset = uint64_t;

/** A directed edge. */
struct Edge
{
    NodeId src;
    NodeId dst;

    bool
    operator==(const Edge &o) const
    {
        return src == o.src && dst == o.dst;
    }
};

/** Edgelist: the raw input representation (Graph500 / GAP convention). */
using EdgeList = std::vector<Edge>;

} // namespace cobra

#endif // COBRA_GRAPH_TYPES_H
