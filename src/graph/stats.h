/**
 * @file
 * Graph characterization: the degree-distribution and index-locality
 * metrics that determine PB/COBRA behaviour (DESIGN.md Section 5) —
 * used to validate that the generated inputs occupy the same classes as
 * the paper's Table III graphs.
 */

#ifndef COBRA_GRAPH_STATS_H
#define COBRA_GRAPH_STATS_H

#include <ostream>

#include "src/graph/csr.h"

namespace cobra {

/** Summary of a graph's degree distribution and index locality. */
struct GraphStats
{
    NodeId numNodes = 0;
    EdgeOffset numEdges = 0;
    EdgeOffset maxDegree = 0;
    double avgDegree = 0;
    /** Fraction of edges owned by the top 1% highest-degree vertices —
     * the skew metric distinguishing KRON-like from URND-like inputs. */
    double top1PercentEdgeShare = 0;
    /** Gini coefficient of the degree distribution in [0, 1]. */
    double degreeGini = 0;
    /** Mean ring distance |src-dst| normalized by n/2 in [0, 1]; small
     * values = ROAD-like index locality. */
    double meanIndexDistance = 0;
    /** Fraction of vertices with zero out-degree. */
    double zeroDegreeShare = 0;

    void print(std::ostream &os, const std::string &name) const;
};

/** Compute stats over an out-CSR (uses its edges for locality). */
GraphStats computeGraphStats(const CsrGraph &g);

} // namespace cobra

#endif // COBRA_GRAPH_STATS_H
