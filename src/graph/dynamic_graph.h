/**
 * @file
 * DynamicGraph: a mutable graph substrate built from sorted, mergeable
 * edge-range segments (ROADMAP item 2, the streaming/incremental arc).
 *
 * Representation: a base CSR snapshot whose neighbor lists are sorted
 * and deduplicated, plus one sorted delta segment per vertex holding
 * the edges inserted since the last compaction and tombstones for the
 * base edges deleted since then. A vertex's live adjacency is the
 * ordered merge of its base range with its delta segment — both sides
 * sorted, so every read (degree, liveNeighbors, snapshotCsr) is a
 * linear merge, never a re-sort.
 *
 * Mutations arrive as batches, and a batch of edge insert/delete ops
 * is itself an irregular-update stream keyed by source vertex — which
 * means the batch can be *binned* exactly like the paper's update
 * kernels. applyBatchParallel() routes the ops through
 * ParallelPbRunner: per-thread binners partition the ops by source
 * range, and the bin-partitioned Accumulate applies each source's ops
 * race-free (a delta segment is touched only by its bin's owner) in
 * global stream order (the runner drains bins shard 0..n-1 over
 * contiguous stream slices), so parallel application is
 * order-equivalent to the serial loop at every thread count.
 *
 * Compaction rides the same insight: merging the segments back into a
 * fresh CSR is exactly the NeighborPopulate PB pipeline — the merged
 * edge stream (sorted by source, sorted within a source) is binned and
 * scattered through per-source cursors, and the per-index stream-order
 * guarantee makes the produced adjacency come out sorted with no final
 * sort pass. Conservation is checked at every seam (runner verdict,
 * cursor-exhaustion, sortedness sweep) so an injected drop/stall/skew
 * in the merge or scatter surfaces as a typed kDataLoss, never as a
 * silently wrong graph.
 *
 * Accounting contract (the mutation conservation invariant the server
 * and soak gate enforce): for every batch,
 *     submitted ops == applied (inserted + removed) + deduped + rejected
 * where deduped = insert of an already-live edge and rejected = delete
 * of an edge that is not live.
 */

#ifndef COBRA_GRAPH_DYNAMIC_GRAPH_H
#define COBRA_GRAPH_DYNAMIC_GRAPH_H

#include <cstdint>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/types.h"
#include "src/pb/engine_config.h"
#include "src/sim/phase_recorder.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace cobra {

/** One batch of edge mutations, applied in stream order per source. */
struct MutationBatch
{
    struct Op
    {
        NodeId src = 0;
        NodeId dst = 0;
        bool remove = false; ///< false = insert, true = delete
    };

    std::vector<Op> ops;

    size_t size() const { return ops.size(); }

    void
    insert(NodeId src, NodeId dst)
    {
        ops.push_back(Op{src, dst, false});
    }

    void
    remove(NodeId src, NodeId dst)
    {
        ops.push_back(Op{src, dst, true});
    }
};

/** Exact per-batch accounting plus the dirty sets incremental
 * recompute consumes. */
struct BatchResult
{
    uint64_t inserted = 0; ///< new live edges
    uint64_t removed = 0;  ///< live edges deleted (incl. tombstoned)
    uint64_t deduped = 0;  ///< inserts of already-live edges
    uint64_t rejected = 0; ///< deletes of edges that were not live

    /** Ops that changed the edge set. */
    uint64_t applied() const { return inserted + removed; }

    /** The conservation identity every batch must satisfy. */
    bool
    conserved(uint64_t submitted) const
    {
        return submitted == applied() + deduped + rejected;
    }

    /** Destinations of applied ops (sorted, unique): the vertices
     * whose in-edge sets changed. */
    std::vector<NodeId> affectedDsts;

    /** Sources of applied ops (sorted, unique): the vertices whose
     * out-degree (and hence Pagerank contribution) changed. */
    std::vector<NodeId> degreeChangedSrcs;
};

/** Base CSR + per-vertex tombstoned delta segments. Copyable (the
 * server's trial-commit mutation path relies on it). */
class DynamicGraph
{
  public:
    /** Empty graph over [0, num_nodes). */
    explicit DynamicGraph(NodeId num_nodes);

    /** Seed from an edge list; the base snapshot is the sorted,
     * deduplicated CSR of @p base (multi-edges collapse). */
    DynamicGraph(NodeId num_nodes, const EdgeList &base);

    /**
     * Adopt @p base as the graph (empty deltas) — the durability
     * layer's checkpoint-restore path. The CSR must already be sorted
     * and unique per row (snapshotCsr() output always is); anything
     * else throws kCorruptFile rather than seeding a graph whose
     * merge invariants are silently broken.
     */
    explicit DynamicGraph(CsrGraph base);

    NodeId numNodes() const { return nodes_; }

    /** Live edges (base minus tombstones plus delta inserts). */
    uint64_t numEdges() const { return liveEdges_; }

    /** Live out-degree of @p v (cached; O(1)). */
    EdgeOffset degree(NodeId v) const { return degree_[v]; }

    bool hasEdge(NodeId src, NodeId dst) const;

    /** Live adjacency of @p v: sorted, unique (base ∪ delta merge). */
    std::vector<NodeId> liveNeighbors(NodeId v) const;

    /**
     * Apply @p batch serially, op by op in stream order. The trusted
     * reference path applyBatchParallel() is certified against.
     */
    BatchResult applyBatch(const MutationBatch &batch);

    /**
     * Apply @p batch by binning its ops through ParallelPbRunner: the
     * ops are partitioned by source range and each bin's ops apply in
     * global stream order, so the result is identical to applyBatch()
     * at every thread count. Sets health() to the runner's
     * conservation verdict (kDataLoss on any dropped/duplicated op —
     * e.g. under an injected kPbDropDrain); on a health failure the
     * delta state is unspecified, so callers that must not lose the
     * graph apply to a copy and commit only on success (the server's
     * trial-commit path).
     */
    BatchResult applyBatchParallel(ThreadPool &pool, PhaseRecorder &rec,
                                   const MutationBatch &batch,
                                   uint32_t max_bins,
                                   const PbEngineConfig &engine = {});

    /**
     * Full merged snapshot: offsets + sorted unique neighbor lists.
     * Byte-identical to buildSortedDedupRef() over the same live edge
     * multiset (the property test pins this).
     */
    CsrGraph snapshotCsr() const;

    /**
     * FNV-1a over the merged snapshot's degree sequence followed by
     * its neighbor array — the same fingerprint kSnapshot serves
     * (ResponseFrame::resultChecksum) and the WAL stamps into every
     * record as the expected post-batch state. Deterministic across
     * thread counts and invariant under compaction, so a recovered
     * replica can be compared bit-for-bit against the no-crash run.
     */
    uint64_t snapshotFingerprint() const;

    /** Live edges flattened in snapshot order (sorted by src, dst). */
    EdgeList toEdgeList() const;

    /**
     * Merge every delta segment back into the base CSR through the
     * NeighborPopulate PB path: the merged sorted edge stream is
     * binned by source and scattered through per-source cursors on
     * @p pool. On success the delta segments are empty, tombstones are
     * resolved, and the snapshot is unchanged. On any conservation
     * failure (runner verdict, cursor mismatch, unsorted adjacency —
     * all reachable under injected faults in the merge/scatter paths)
     * returns a typed kDataLoss and leaves the graph exactly as it
     * was: compaction is all-or-nothing.
     */
    Status compact(ThreadPool &pool, PhaseRecorder &rec,
                   uint32_t max_bins, const PbEngineConfig &engine = {});

    /** Pending delta entries (inserts + tombstones) across vertices. */
    uint64_t deltaEdges() const { return deltaEntries_; }

    /** Compactions that committed since construction. */
    uint64_t compactions() const { return compactions_; }

    /** delta/base ratio that triggers threshold compaction. */
    void setCompactionThreshold(double ratio) { compactRatio_ = ratio; }

    /** True when the delta share crossed the compaction threshold. */
    bool needsCompaction() const;

    /** Verdict of the last applyBatchParallel()/compact(). */
    Status health() const { return health_; }

  private:
    struct DeltaEntry
    {
        NodeId dst = 0;
        bool tomb = false; ///< true = tombstone over a base edge
    };

    enum OpOutcome : uint8_t
    {
        kOutcomeLost = 0, ///< never applied — conservation violation
        kOutcomeInserted,
        kOutcomeRemoved,
        kOutcomeDeduped,
        kOutcomeRejected,
    };

    bool baseHasEdge(NodeId src, NodeId dst) const;
    OpOutcome applyOp(NodeId src, NodeId dst, bool remove);

    /** Fold per-op outcomes into a BatchResult + counters; flags any
     * kOutcomeLost op into health_. */
    BatchResult reduceOutcomes(const MutationBatch &batch,
                               const std::vector<uint8_t> &outcomes);

    /**
     * Emit the live edge stream (sorted by src, sorted within src)
     * into @p out. Honors an active FaultInjector at vertex
     * granularity — kPbStallAccumulate stalls, kPbDropDrain drops a
     * vertex's merge, kBinOffsetSkew skips the head of one — so the
     * compaction fault matrix has a merge-path seam to hit. Returns
     * the number of edges emitted (a mismatch against liveEdges_ is
     * the caller's typed error).
     */
    uint64_t mergeLiveEdges(EdgeList &out) const;

    void recountDelta();

    NodeId nodes_ = 0;
    CsrGraph base_; ///< sorted + deduplicated
    std::vector<std::vector<DeltaEntry>> delta_;
    std::vector<EdgeOffset> degree_; ///< cached live out-degrees
    uint64_t liveEdges_ = 0;
    uint64_t deltaEntries_ = 0;
    uint64_t compactions_ = 0;
    double compactRatio_ = 0.25;
    Status health_;
};

} // namespace cobra

#endif // COBRA_GRAPH_DYNAMIC_GRAPH_H
