#include "src/graph/builder.h"

#include <algorithm>

namespace cobra {

std::vector<EdgeOffset>
countDegreesRef(NodeId num_nodes, const EdgeList &el)
{
    std::vector<EdgeOffset> degrees(num_nodes, 0);
    for (const Edge &e : el)
        ++degrees[e.src];
    return degrees;
}

std::vector<NodeId>
populateNeighborsRef(const std::vector<EdgeOffset> &offsets,
                     const EdgeList &el)
{
    std::vector<EdgeOffset> cursor(offsets.begin(), offsets.end() - 1);
    std::vector<NodeId> neighs(el.size());
    for (const Edge &e : el)
        neighs[cursor[e.src]++] = e.dst;
    return neighs;
}

CsrGraph
buildSortedDedupRef(NodeId num_nodes, const EdgeList &el)
{
    CsrGraph sorted = sortNeighborhoods(CsrGraph::build(num_nodes, el));
    std::vector<EdgeOffset> offsets(num_nodes + 1, 0);
    std::vector<NodeId> neighs;
    neighs.reserve(sorted.neighborsArray().size());
    for (NodeId v = 0; v < num_nodes; ++v) {
        const auto row = sorted.neighbors(v);
        for (size_t i = 0; i < row.size(); ++i)
            if (i == 0 || row[i] != row[i - 1])
                neighs.push_back(row[i]);
        offsets[v + 1] = neighs.size();
    }
    return CsrGraph(std::move(offsets), std::move(neighs));
}

CsrGraph
sortNeighborhoods(const CsrGraph &g)
{
    std::vector<NodeId> neighs = g.neighborsArray();
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        auto begin = neighs.begin() + static_cast<ptrdiff_t>(g.offset(v));
        auto end = begin + static_cast<ptrdiff_t>(g.degree(v));
        std::sort(begin, end);
    }
    return CsrGraph(g.offsetsArray(), std::move(neighs));
}

} // namespace cobra
