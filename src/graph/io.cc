#include "src/graph/io.h"

#include <cstdint>
#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/util/error.h"

namespace cobra {

namespace {

constexpr uint64_t kBelMagic = 0x434F425241424531ULL; // "COBRABE1"
constexpr uint64_t kCsrMagic = 0x434F425241435231ULL; // "COBRACR1"

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is, const std::string &path)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    COBRA_FATAL_IF(!is, path << ": truncated file");
    return v;
}

} // namespace

EdgeList
loadEdgeListText(const std::string &path, NodeId *num_nodes)
{
    std::ifstream in(path);
    COBRA_FATAL_IF(!in, "cannot open " << path);
    EdgeList el;
    NodeId max_node = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream ls(line);
        uint64_t s, d;
        if (!(ls >> s >> d))
            COBRA_FATAL_IF(true, path << ": malformed line: " << line);
        COBRA_FATAL_IF(s > ~NodeId{0} || d > ~NodeId{0},
                       path << ": vertex id exceeds 32 bits");
        el.push_back(Edge{static_cast<NodeId>(s),
                          static_cast<NodeId>(d)});
        max_node = std::max({max_node, static_cast<NodeId>(s),
                             static_cast<NodeId>(d)});
    }
    if (num_nodes)
        *num_nodes = el.empty() ? 0 : max_node + 1;
    return el;
}

void
saveEdgeListText(const std::string &path, const EdgeList &el)
{
    std::ofstream out(path);
    COBRA_FATAL_IF(!out, "cannot open " << path << " for writing");
    out << "# src dst (cobra edgelist)\n";
    for (const Edge &e : el)
        out << e.src << " " << e.dst << "\n";
    COBRA_FATAL_IF(!out, "write to " << path << " failed");
}

EdgeList
loadEdgeListBinary(const std::string &path, NodeId *num_nodes)
{
    std::ifstream in(path, std::ios::binary);
    COBRA_FATAL_IF(!in, "cannot open " << path);
    COBRA_FATAL_IF(readPod<uint64_t>(in, path) != kBelMagic,
                   path << ": not a cobra binary edgelist");
    const uint64_t n = readPod<uint64_t>(in, path);
    const uint64_t m = readPod<uint64_t>(in, path);
    EdgeList el(m);
    in.read(reinterpret_cast<char *>(el.data()),
            static_cast<std::streamsize>(m * sizeof(Edge)));
    COBRA_FATAL_IF(!in, path << ": truncated edge data");
    if (num_nodes)
        *num_nodes = static_cast<NodeId>(n);
    return el;
}

void
saveEdgeListBinary(const std::string &path, NodeId num_nodes,
                   const EdgeList &el)
{
    std::ofstream out(path, std::ios::binary);
    COBRA_FATAL_IF(!out, "cannot open " << path << " for writing");
    writePod(out, kBelMagic);
    writePod(out, static_cast<uint64_t>(num_nodes));
    writePod(out, static_cast<uint64_t>(el.size()));
    out.write(reinterpret_cast<const char *>(el.data()),
              static_cast<std::streamsize>(el.size() * sizeof(Edge)));
    COBRA_FATAL_IF(!out, "write to " << path << " failed");
}

CsrGraph
loadCsrBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    COBRA_FATAL_IF(!in, "cannot open " << path);
    COBRA_FATAL_IF(readPod<uint64_t>(in, path) != kCsrMagic,
                   path << ": not a cobra binary CSR");
    const uint64_t n = readPod<uint64_t>(in, path);
    const uint64_t m = readPod<uint64_t>(in, path);
    std::vector<EdgeOffset> offsets(n + 1);
    std::vector<NodeId> neighs(m);
    in.read(reinterpret_cast<char *>(offsets.data()),
            static_cast<std::streamsize>((n + 1) * sizeof(EdgeOffset)));
    in.read(reinterpret_cast<char *>(neighs.data()),
            static_cast<std::streamsize>(m * sizeof(NodeId)));
    COBRA_FATAL_IF(!in, path << ": truncated CSR data");
    COBRA_FATAL_IF(offsets.back() != m,
                   path << ": inconsistent CSR (offsets.back != m)");
    return CsrGraph(std::move(offsets), std::move(neighs));
}

void
saveCsrBinary(const std::string &path, const CsrGraph &g)
{
    std::ofstream out(path, std::ios::binary);
    COBRA_FATAL_IF(!out, "cannot open " << path << " for writing");
    writePod(out, kCsrMagic);
    writePod(out, static_cast<uint64_t>(g.numNodes()));
    writePod(out, static_cast<uint64_t>(g.numEdges()));
    out.write(reinterpret_cast<const char *>(g.offsetsArray().data()),
              static_cast<std::streamsize>((g.numNodes() + 1) *
                                           sizeof(EdgeOffset)));
    out.write(reinterpret_cast<const char *>(g.neighborsArray().data()),
              static_cast<std::streamsize>(g.numEdges() *
                                           sizeof(NodeId)));
    COBRA_FATAL_IF(!out, "write to " << path << " failed");
}

} // namespace cobra
