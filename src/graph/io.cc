#include "src/graph/io.h"

#include <cstdint>
#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/util/error.h"

namespace cobra {

namespace {

constexpr uint64_t kBelMagic = 0x434F425241424531ULL; // "COBRABE1"
constexpr uint64_t kCsrMagic = 0x434F425241435231ULL; // "COBRACR1"
constexpr uint64_t kHeaderBytes = 3 * sizeof(uint64_t);

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is, const std::string &path)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    COBRA_THROW_IF(!is, ErrorCode::kCorruptFile, path << ": truncated file");
    return v;
}

/** Byte size of an open stream (position is restored to the start). */
uint64_t
streamSize(std::ifstream &in)
{
    in.seekg(0, std::ios::end);
    const auto sz = in.tellg();
    in.seekg(0, std::ios::beg);
    return sz < 0 ? 0 : static_cast<uint64_t>(sz);
}

/**
 * Validate that a declared element count is physically satisfiable:
 * count * elem_bytes must not overflow and must fit in the bytes that
 * remain after the header. Catches both truncation and a corrupt header
 * whose count would drive a multi-GB allocation from a tiny file.
 */
void
checkPayloadFits(const std::string &path, const char *what, uint64_t count,
                 uint64_t elem_bytes, uint64_t payload_bytes)
{
    COBRA_THROW_IF(elem_bytes != 0 &&
                       count > std::numeric_limits<uint64_t>::max() /
                                   elem_bytes,
                   ErrorCode::kCorruptFile,
                   path << ": " << what << " count " << count
                        << " overflows the payload size");
    COBRA_THROW_IF(count * elem_bytes > payload_bytes,
                   ErrorCode::kCorruptFile,
                   path << ": truncated " << what << " data (need "
                        << count * elem_bytes << " bytes, have "
                        << payload_bytes << ")");
}

template <typename Fn>
Status
statusFrom(Fn &&fn) noexcept
{
    try {
        fn();
        return Status::Ok();
    } catch (const Error &e) {
        return Status::FromError(e);
    } catch (const std::exception &e) {
        return Status(ErrorCode::kInternal, e.what());
    }
}

} // namespace

EdgeList
loadEdgeListText(const std::string &path, NodeId *num_nodes)
{
    std::ifstream in(path);
    COBRA_THROW_IF(!in, ErrorCode::kIoError, "cannot open " << path);
    EdgeList el;
    NodeId max_node = 0;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream ls(line);
        uint64_t s, d;
        COBRA_THROW_IF(!(ls >> s >> d), ErrorCode::kCorruptFile,
                       path << ":" << lineno << ": malformed line: "
                            << line);
        COBRA_THROW_IF(s > ~NodeId{0} || d > ~NodeId{0},
                       ErrorCode::kOutOfRange,
                       path << ":" << lineno
                            << ": vertex id exceeds 32 bits");
        el.push_back(Edge{static_cast<NodeId>(s),
                          static_cast<NodeId>(d)});
        max_node = std::max({max_node, static_cast<NodeId>(s),
                             static_cast<NodeId>(d)});
    }
    COBRA_THROW_IF(in.bad(), ErrorCode::kIoError,
                   path << ": read error mid-file");
    if (num_nodes)
        *num_nodes = el.empty() ? 0 : max_node + 1;
    return el;
}

void
saveEdgeListText(const std::string &path, const EdgeList &el)
{
    std::ofstream out(path);
    COBRA_THROW_IF(!out, ErrorCode::kIoError,
                   "cannot open " << path << " for writing");
    out << "# src dst (cobra edgelist)\n";
    for (const Edge &e : el)
        out << e.src << " " << e.dst << "\n";
    COBRA_THROW_IF(!out, ErrorCode::kIoError,
                   "write to " << path << " failed");
}

EdgeList
loadEdgeListBinary(const std::string &path, NodeId *num_nodes)
{
    std::ifstream in(path, std::ios::binary);
    COBRA_THROW_IF(!in, ErrorCode::kIoError, "cannot open " << path);
    const uint64_t bytes = streamSize(in);
    COBRA_THROW_IF(bytes < kHeaderBytes, ErrorCode::kCorruptFile,
                   path << ": too small for a cobra binary edgelist");
    COBRA_THROW_IF(readPod<uint64_t>(in, path) != kBelMagic,
                   ErrorCode::kCorruptFile,
                   path << ": not a cobra binary edgelist");
    const uint64_t n = readPod<uint64_t>(in, path);
    const uint64_t m = readPod<uint64_t>(in, path);
    COBRA_THROW_IF(n > uint64_t{1} + ~NodeId{0}, ErrorCode::kCorruptFile,
                   path << ": numNodes " << n << " exceeds 32-bit ids");
    COBRA_THROW_IF(n == 0 && m != 0, ErrorCode::kCorruptFile,
                   path << ": " << m << " edges declared over zero nodes");
    checkPayloadFits(path, "edge", m, sizeof(Edge), bytes - kHeaderBytes);
    COBRA_THROW_IF(bytes != kHeaderBytes + m * sizeof(Edge),
                   ErrorCode::kCorruptFile,
                   path << ": oversized file (" << bytes << " bytes, header"
                        << " declares " << kHeaderBytes + m * sizeof(Edge)
                        << ")");
    EdgeList el(m);
    in.read(reinterpret_cast<char *>(el.data()),
            static_cast<std::streamsize>(m * sizeof(Edge)));
    COBRA_THROW_IF(!in, ErrorCode::kCorruptFile,
                   path << ": truncated edge data");
    for (size_t i = 0; i < el.size(); ++i)
        COBRA_THROW_IF(el[i].src >= n || el[i].dst >= n,
                       ErrorCode::kOutOfRange,
                       path << ": edge " << i << " endpoint ("
                            << el[i].src << "," << el[i].dst
                            << ") outside declared " << n << " nodes");
    if (num_nodes)
        *num_nodes = static_cast<NodeId>(n);
    return el;
}

void
saveEdgeListBinary(const std::string &path, NodeId num_nodes,
                   const EdgeList &el)
{
    std::ofstream out(path, std::ios::binary);
    COBRA_THROW_IF(!out, ErrorCode::kIoError,
                   "cannot open " << path << " for writing");
    writePod(out, kBelMagic);
    writePod(out, static_cast<uint64_t>(num_nodes));
    writePod(out, static_cast<uint64_t>(el.size()));
    out.write(reinterpret_cast<const char *>(el.data()),
              static_cast<std::streamsize>(el.size() * sizeof(Edge)));
    COBRA_THROW_IF(!out, ErrorCode::kIoError,
                   "write to " << path << " failed");
}

CsrGraph
readCsrStream(std::istream &is, const std::string &path,
              uint64_t budget_bytes, uint64_t *consumed)
{
    COBRA_THROW_IF(budget_bytes < 2 * sizeof(uint64_t),
                   ErrorCode::kCorruptFile,
                   path << ": truncated CSR block header");
    const uint64_t n = readPod<uint64_t>(is, path);
    const uint64_t m = readPod<uint64_t>(is, path);
    COBRA_THROW_IF(n > uint64_t{1} + ~NodeId{0}, ErrorCode::kCorruptFile,
                   path << ": numNodes " << n << " exceeds 32-bit ids");
    const uint64_t payload = budget_bytes - 2 * sizeof(uint64_t);
    checkPayloadFits(path, "offset", n + 1, sizeof(EdgeOffset), payload);
    const uint64_t offset_bytes = (n + 1) * sizeof(EdgeOffset);
    checkPayloadFits(path, "neighbor", m, sizeof(NodeId),
                     payload - offset_bytes);
    std::vector<EdgeOffset> offsets(n + 1);
    std::vector<NodeId> neighs(m);
    is.read(reinterpret_cast<char *>(offsets.data()),
            static_cast<std::streamsize>(offset_bytes));
    is.read(reinterpret_cast<char *>(neighs.data()),
            static_cast<std::streamsize>(m * sizeof(NodeId)));
    COBRA_THROW_IF(!is, ErrorCode::kCorruptFile,
                   path << ": truncated CSR data");
    COBRA_THROW_IF(offsets.front() != 0, ErrorCode::kCorruptFile,
                   path << ": inconsistent CSR (offsets[0] != 0)");
    COBRA_THROW_IF(offsets.back() != m, ErrorCode::kCorruptFile,
                   path << ": inconsistent CSR (offsets.back != m)");
    for (uint64_t v = 0; v < n; ++v)
        COBRA_THROW_IF(offsets[v] > offsets[v + 1],
                       ErrorCode::kCorruptFile,
                       path << ": inconsistent CSR (offsets decrease at "
                            << v << ")");
    for (uint64_t i = 0; i < m; ++i)
        COBRA_THROW_IF(neighs[i] >= n, ErrorCode::kOutOfRange,
                       path << ": neighbor " << i << " (" << neighs[i]
                            << ") outside declared " << n << " nodes");
    if (consumed)
        *consumed = 2 * sizeof(uint64_t) + offset_bytes +
                    m * sizeof(NodeId);
    return CsrGraph(std::move(offsets), std::move(neighs));
}

void
writeCsrStream(std::ostream &os, const CsrGraph &g)
{
    writePod(os, static_cast<uint64_t>(g.numNodes()));
    writePod(os, static_cast<uint64_t>(g.numEdges()));
    os.write(reinterpret_cast<const char *>(g.offsetsArray().data()),
             static_cast<std::streamsize>((g.numNodes() + 1) *
                                          sizeof(EdgeOffset)));
    os.write(reinterpret_cast<const char *>(g.neighborsArray().data()),
             static_cast<std::streamsize>(g.numEdges() *
                                          sizeof(NodeId)));
}

CsrGraph
loadCsrBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    COBRA_THROW_IF(!in, ErrorCode::kIoError, "cannot open " << path);
    const uint64_t bytes = streamSize(in);
    COBRA_THROW_IF(bytes < kHeaderBytes, ErrorCode::kCorruptFile,
                   path << ": too small for a cobra binary CSR");
    COBRA_THROW_IF(readPod<uint64_t>(in, path) != kCsrMagic,
                   ErrorCode::kCorruptFile,
                   path << ": not a cobra binary CSR");
    uint64_t consumed = 0;
    CsrGraph g = readCsrStream(in, path, bytes - sizeof(uint64_t),
                               &consumed);
    COBRA_THROW_IF(bytes != sizeof(uint64_t) + consumed,
                   ErrorCode::kCorruptFile,
                   path << ": oversized file (" << bytes
                        << " bytes, header declares "
                        << sizeof(uint64_t) + consumed << ")");
    return g;
}

void
saveCsrBinary(const std::string &path, const CsrGraph &g)
{
    std::ofstream out(path, std::ios::binary);
    COBRA_THROW_IF(!out, ErrorCode::kIoError,
                   "cannot open " << path << " for writing");
    writePod(out, kCsrMagic);
    writeCsrStream(out, g);
    COBRA_THROW_IF(!out, ErrorCode::kIoError,
                   "write to " << path << " failed");
}

Status
tryLoadEdgeListText(const std::string &path, EdgeList *out,
                    NodeId *num_nodes) noexcept
{
    return statusFrom(
        [&] { *out = loadEdgeListText(path, num_nodes); });
}

Status
tryLoadEdgeListBinary(const std::string &path, EdgeList *out,
                      NodeId *num_nodes) noexcept
{
    return statusFrom(
        [&] { *out = loadEdgeListBinary(path, num_nodes); });
}

Status
tryLoadCsrBinary(const std::string &path, CsrGraph *out) noexcept
{
    return statusFrom([&] { *out = loadCsrBinary(path); });
}

} // namespace cobra
