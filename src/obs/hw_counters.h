/**
 * @file
 * HwCounters: a perf_event_open wrapper for real microarchitectural
 * evidence (cycles, instructions, L1d misses, LLC misses, branch
 * misses).
 *
 * The original propagation-blocking work quantifies binning overhead in
 * per-phase hardware counters; wall-clock deltas alone cannot attribute
 * a Binning speedup to locality rather than, say, fewer instructions.
 * This wrapper gives the native benchmarks and the CLI that evidence on
 * hosts that allow it.
 *
 * Availability is *not* assumed: containers commonly deny the syscall
 * (seccomp / perf_event_paranoid) and non-Linux hosts lack it entirely.
 * open() reports a Status instead of throwing, each event degrades
 * individually (a host may expose instructions but not LLC misses), and
 * every consumer must handle available() == false — tier-1 tests never
 * depend on the syscall succeeding.
 *
 * Counters are opened with inherit=1, so threads spawned *after* open()
 * (e.g. a ThreadPool constructed afterwards) are aggregated into the
 * same counts. Open the counters before the pool when measuring
 * parallel phases.
 */

#ifndef COBRA_OBS_HW_COUNTERS_H
#define COBRA_OBS_HW_COUNTERS_H

#include <cstdint>
#include <string>

#include "src/util/error.h"

namespace cobra {

/** One reading of the counter group; per-event availability flags. */
struct HwSample
{
    bool available = false; ///< at least one event is live
    bool hasCycles = false;
    bool hasInstructions = false;
    bool hasL1dMisses = false;
    bool hasLlcMisses = false;
    bool hasBranchMisses = false;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t l1dMisses = 0;
    uint64_t llcMisses = 0;
    uint64_t branchMisses = 0;

    HwSample
    operator-(const HwSample &o) const
    {
        HwSample d = *this;
        d.cycles -= o.cycles;
        d.instructions -= o.instructions;
        d.l1dMisses -= o.l1dMisses;
        d.llcMisses -= o.llcMisses;
        d.branchMisses -= o.branchMisses;
        return d;
    }
};

/** Owns the perf event fds; movable-nothing, create one per measurement. */
class HwCounters
{
  public:
    HwCounters() = default;
    ~HwCounters();
    HwCounters(const HwCounters &) = delete;
    HwCounters &operator=(const HwCounters &) = delete;

    /**
     * Open the event set (idempotent). Ok when at least one event
     * opened; otherwise a Status naming why (kUnimplemented off-Linux
     * or when the syscall is denied wholesale, kIoError on other
     * per-event failures).
     */
    Status open();

    /** True after a successful open(). */
    bool available() const { return available_; }

    /** The open() verdict (Ok before open() is ever called). */
    const Status &status() const { return status_; }

    /** Reset all counters to zero (no-op when unavailable). */
    void reset();

    /** Enable / disable counting (no-ops when unavailable). */
    void start();
    void stop();

    /**
     * Running totals since the last reset(). Counts accumulate across
     * start()/stop() pairs, so successive reads are monotonic while
     * counting is enabled. All-zero, available=false sample when the
     * counters could not be opened.
     */
    HwSample read() const;

  private:
    enum EventIdx
    {
        kCycles = 0,
        kInstructions,
        kL1dMisses,
        kLlcMisses,
        kBranchMisses,
        kNumEvents
    };

    int fds_[kNumEvents] = {-1, -1, -1, -1, -1};
    bool opened_ = false;
    bool available_ = false;
    Status status_;
};

} // namespace cobra

#endif // COBRA_OBS_HW_COUNTERS_H
