#include "src/obs/trace.h"

#include <atomic>
#include <fstream>

#include "src/util/json.h"
#include "src/util/thread_pool.h"

namespace cobra {

namespace {
std::atomic<TraceSession *> g_active{nullptr};
} // namespace

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t
TraceSession::nowUs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

uint32_t
TraceSession::currentTid()
{
    int w = ThreadPool::currentWorkerId();
    return w < 0 ? 0u : static_cast<uint32_t>(w) + 1u;
}

void
TraceSession::complete(std::string name, std::string cat, uint64_t ts_us,
                       uint64_t dur_us,
                       std::vector<std::pair<std::string, uint64_t>> args)
{
    TraceEvent e;
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.ph = 'X';
    e.ts = ts_us;
    e.dur = dur_us;
    e.tid = currentTid();
    e.args = std::move(args);
    std::lock_guard<std::mutex> lk(mtx_);
    events_.push_back(std::move(e));
}

void
TraceSession::instant(std::string name, std::string cat,
                      std::vector<std::pair<std::string, uint64_t>> args)
{
    TraceEvent e;
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.ph = 'i';
    e.ts = nowUs();
    e.tid = currentTid();
    e.args = std::move(args);
    std::lock_guard<std::mutex> lk(mtx_);
    events_.push_back(std::move(e));
}

void
TraceSession::counter(std::string name, uint64_t value)
{
    TraceEvent e;
    e.name = std::move(name);
    e.cat = "counter";
    e.ph = 'C';
    e.ts = nowUs();
    e.tid = currentTid();
    e.args.emplace_back("value", value);
    std::lock_guard<std::mutex> lk(mtx_);
    events_.push_back(std::move(e));
}

size_t
TraceSession::numEvents() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return events_.size();
}

std::vector<TraceEvent>
TraceSession::events() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return events_;
}

void
TraceSession::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lk(mtx_);
    JsonWriter w(os);
    w.beginObject();
    w.key("traceEvents").beginArray();
    for (const TraceEvent &e : events_) {
        w.beginObject()
            .kv("name", e.name)
            .kv("cat", e.cat)
            .kv("ph", std::string(1, e.ph))
            .kv("ts", e.ts);
        if (e.ph == 'X')
            w.kv("dur", e.dur);
        w.kv("pid", uint64_t{1}).kv("tid", uint64_t{e.tid});
        w.key("args").beginObject();
        for (const auto &[k, v] : e.args)
            w.kv(k, v);
        w.end();
        w.end();
    }
    w.end();
    w.kv("displayTimeUnit", "ms");
    w.end();
}

Status
TraceSession::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return Status(ErrorCode::kIoError,
                      "cannot open trace output file: " + path);
    writeJson(os);
    os << "\n";
    if (!os)
        return Status(ErrorCode::kIoError,
                      "short write to trace output file: " + path);
    return Status::Ok();
}

TraceSession *
TraceSession::active()
{
    return g_active.load(std::memory_order_acquire);
}

TraceSession::Scope::Scope(TraceSession &s)
    : prev_(g_active.exchange(&s, std::memory_order_acq_rel))
{
}

TraceSession::Scope::~Scope()
{
    g_active.store(prev_, std::memory_order_release);
}

} // namespace cobra
