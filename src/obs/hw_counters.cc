#include "src/obs/hw_counters.h"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace cobra {

#if defined(__linux__)

namespace {

int
perfEventOpen(struct perf_event_attr *attr)
{
    // pid=0, cpu=-1: this thread on any CPU; inherit covers children.
    return static_cast<int>(
        syscall(__NR_perf_event_open, attr, 0, -1, -1, 0));
}

int
openHwEvent(uint32_t type, uint64_t config)
{
    struct perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = 1;
    attr.inherit = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    return perfEventOpen(&attr);
}

constexpr uint64_t
cacheConfig(uint64_t cache, uint64_t op, uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

} // namespace

Status
HwCounters::open()
{
    if (opened_)
        return status_;
    opened_ = true;

    struct EventSpec
    {
        uint32_t type;
        uint64_t config;
    };
    const EventSpec specs[kNumEvents] = {
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
        {PERF_TYPE_HW_CACHE,
         cacheConfig(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_MISS)},
        {PERF_TYPE_HW_CACHE,
         cacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_MISS)},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    };

    int first_errno = 0;
    int live = 0;
    for (int i = 0; i < kNumEvents; ++i) {
        fds_[i] = openHwEvent(specs[i].type, specs[i].config);
        if (fds_[i] >= 0)
            ++live;
        else if (first_errno == 0)
            first_errno = errno;
    }

    if (live == 0) {
        // A wholesale denial (seccomp ENOSYS, perf_event_paranoid
        // EACCES/EPERM) is an environment limitation, not an IO bug.
        ErrorCode code = (first_errno == ENOSYS || first_errno == EACCES ||
                          first_errno == EPERM)
            ? ErrorCode::kUnimplemented
            : ErrorCode::kIoError;
        status_ = Status(code,
                         std::string("perf_event_open unavailable: ") +
                             std::strerror(first_errno));
        return status_;
    }
    available_ = true;
    status_ = Status::Ok();
    return status_;
}

HwCounters::~HwCounters()
{
    for (int fd : fds_)
        if (fd >= 0)
            ::close(fd);
}

void
HwCounters::reset()
{
    for (int fd : fds_)
        if (fd >= 0)
            ioctl(fd, PERF_EVENT_IOC_RESET, 0);
}

void
HwCounters::start()
{
    for (int fd : fds_)
        if (fd >= 0)
            ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
}

void
HwCounters::stop()
{
    for (int fd : fds_)
        if (fd >= 0)
            ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
}

HwSample
HwCounters::read() const
{
    HwSample s;
    if (!available_)
        return s;
    auto readOne = [&](int idx, uint64_t *out, bool *has) {
        if (fds_[idx] < 0)
            return;
        uint64_t v = 0;
        if (::read(fds_[idx], &v, sizeof(v)) == sizeof(v)) {
            *out = v;
            *has = true;
        }
    };
    readOne(kCycles, &s.cycles, &s.hasCycles);
    readOne(kInstructions, &s.instructions, &s.hasInstructions);
    readOne(kL1dMisses, &s.l1dMisses, &s.hasL1dMisses);
    readOne(kLlcMisses, &s.llcMisses, &s.hasLlcMisses);
    readOne(kBranchMisses, &s.branchMisses, &s.hasBranchMisses);
    s.available = s.hasCycles || s.hasInstructions || s.hasL1dMisses ||
        s.hasLlcMisses || s.hasBranchMisses;
    return s;
}

#else // !__linux__

Status
HwCounters::open()
{
    if (opened_)
        return status_;
    opened_ = true;
    status_ = Status(ErrorCode::kUnimplemented,
                     "perf_event_open requires Linux");
    return status_;
}

HwCounters::~HwCounters() = default;
void HwCounters::reset() {}
void HwCounters::start() {}
void HwCounters::stop() {}

HwSample
HwCounters::read() const
{
    return HwSample{};
}

#endif

} // namespace cobra
