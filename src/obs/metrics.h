/**
 * @file
 * MetricsRegistry: named, thread-sharded counters / gauges / histograms.
 *
 * PR 3 claimed 3-5x Binning speedups from wall-clock deltas alone; the
 * paper's argument rests on counted evidence (instructions, misses,
 * drain bursts). This registry is the first-class home for those counts
 * so every future perf PR is measured, not asserted.
 *
 * Enablement follows the fault-injector discipline: there is no global
 * "metrics on" flag the hot loops must consult. A registry is installed
 * for a dynamic scope (MetricsRegistry::Scope); instrumentation sites
 * fetch a *handle* once per cold section:
 *
 *   if (MetricsCounter *c = metricsCounter("pb.wc.drain_bursts"))
 *       c->add(bursts);
 *
 * Disabled (no active registry) the lookup returns nullptr and the site
 * costs one well-predicted null check on a cold path — hot insert loops
 * are never instrumented directly; they accumulate into locals that are
 * published at phase boundaries (see WcBinner::flush).
 *
 * Counters are sharded across cache-line-padded atomic slots so
 * concurrent increments from pool workers never contend on one line;
 * value() sums the shards (exact: relaxed atomics lose no increments).
 * Histograms reuse util/histogram.h under a mutex — they are recorded
 * at phase granularity, never per tuple.
 */

#ifndef COBRA_OBS_METRICS_H
#define COBRA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/histogram.h"

namespace cobra {

/** Stable per-thread shard slot (assigned on first use, round-robin). */
size_t metricsShardIndex();

/** Monotonic counter, sharded to keep concurrent adds contention-free. */
class MetricsCounter
{
  public:
    static constexpr size_t kShards = 16;

    void
    add(uint64_t n = 1)
    {
        shards_[metricsShardIndex() % kShards].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    /** Exact sum of all shards. */
    uint64_t
    value() const
    {
        uint64_t sum = 0;
        for (const Shard &s : shards_)
            sum += s.v.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> v{0};
    };
    Shard shards_[kShards];
};

/** Last-writer-wins instantaneous value (e.g. configured bin count). */
class MetricsGauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/** Mutex-guarded distribution (phase-granularity recording only). */
class MetricsHistogram
{
  public:
    MetricsHistogram(size_t num_buckets, uint64_t bucket_width)
        : hist_(num_buckets, bucket_width), width_(bucket_width)
    {
    }

    void
    record(uint64_t value, uint64_t weight = 1)
    {
        std::lock_guard<std::mutex> lk(mtx_);
        hist_.add(value, weight);
    }

    uint64_t
    count() const
    {
        std::lock_guard<std::mutex> lk(mtx_);
        return hist_.count();
    }

    double
    mean() const
    {
        std::lock_guard<std::mutex> lk(mtx_);
        return hist_.mean();
    }

    uint64_t
    percentile(double frac) const
    {
        std::lock_guard<std::mutex> lk(mtx_);
        return hist_.percentile(frac);
    }

    uint64_t
    max() const
    {
        std::lock_guard<std::mutex> lk(mtx_);
        return hist_.max();
    }

    uint64_t bucketWidth() const { return width_; }

  private:
    mutable std::mutex mtx_;
    Histogram hist_;
    uint64_t width_;
};

/**
 * Named instrument registry. Instruments are created on first request
 * and live as long as the registry, so handles never dangle while the
 * registry is installed. All methods are thread-safe.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    MetricsCounter *counter(const std::string &name);
    MetricsGauge *gauge(const std::string &name);

    /** Created on first call; later calls ignore the geometry args. */
    MetricsHistogram *histogram(const std::string &name,
                                size_t num_buckets = 64,
                                uint64_t bucket_width = 1000);

    /** Registered instrument names, sorted (for tests and export). */
    std::vector<std::string> counterNames() const;

    /** Value of a counter, or 0 when it was never created. */
    uint64_t counterValue(const std::string &name) const;
    int64_t gaugeValue(const std::string &name) const;

    /** One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}} */
    void writeJson(std::ostream &os) const;

    /** The installed registry, or nullptr when metrics are disabled. */
    static MetricsRegistry *active();

    /** Installs a registry for a dynamic scope (restores the previous). */
    class Scope
    {
      public:
        explicit Scope(MetricsRegistry &r);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        MetricsRegistry *prev_;
    };

  private:
    mutable std::mutex mtx_;
    std::map<std::string, std::unique_ptr<MetricsCounter>> counters_;
    std::map<std::string, std::unique_ptr<MetricsGauge>> gauges_;
    std::map<std::string, std::unique_ptr<MetricsHistogram>> histograms_;
};

/**
 * Handle lookups against the active registry. Null when disabled — the
 * branch-on-null handle pattern at every instrumentation site.
 */
MetricsCounter *metricsCounter(const std::string &name);
MetricsGauge *metricsGauge(const std::string &name);
MetricsHistogram *metricsHistogram(const std::string &name,
                                   size_t num_buckets = 64,
                                   uint64_t bucket_width = 1000);

} // namespace cobra

#endif // COBRA_OBS_METRICS_H
