/**
 * @file
 * TraceSession: chrome://tracing-format span emission.
 *
 * The paper's phase structure (Init / Binning / Accumulate, Table I and
 * Fig 11) is temporal; a JSON trace viewable in chrome://tracing (or
 * https://ui.perfetto.dev) makes the per-thread shape of a run visible:
 * which worker ran which Binning shard, how long each phase barrier
 * waited, where WC drain bursts cluster.
 *
 * Enablement mirrors MetricsRegistry (and the fault injector): install
 * a session with TraceSession::Scope; instrumentation sites check
 * TraceSession::active() — a single null test when tracing is off.
 * Spans are recorded only at phase/shard granularity, never per tuple,
 * so the mutex-guarded event list is off every hot path.
 *
 * Event timeline ids: tid 0 is the calling (main) thread; pool workers
 * report ThreadPool::currentWorkerId() + 1, so a trace of an N-thread
 * run shows N+1 rows whose ids match the emitting workers.
 *
 * Output format (the chrome-tracing "JSON Object Format"):
 *   {"traceEvents":[{"name":...,"cat":...,"ph":"X","ts":us,"dur":us,
 *                    "pid":1,"tid":T,"args":{...}}, ...]}
 */

#ifndef COBRA_OBS_TRACE_H
#define COBRA_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/util/error.h"

namespace cobra {

/** One recorded trace event (complete span, instant, or counter). */
struct TraceEvent
{
    std::string name;
    std::string cat;
    char ph = 'X';   ///< 'X' complete, 'i' instant, 'C' counter
    uint64_t ts = 0; ///< microseconds since session start
    uint64_t dur = 0;
    uint32_t tid = 0;
    std::vector<std::pair<std::string, uint64_t>> args;
};

/** Collects trace events for one run and serializes them as JSON. */
class TraceSession
{
  public:
    TraceSession();
    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Microseconds since this session was constructed. */
    uint64_t nowUs() const;

    /** Trace timeline id of the calling thread (0 = main, 1+N = worker N). */
    static uint32_t currentTid();

    void complete(std::string name, std::string cat, uint64_t ts_us,
                  uint64_t dur_us,
                  std::vector<std::pair<std::string, uint64_t>> args = {});
    void instant(std::string name, std::string cat,
                 std::vector<std::pair<std::string, uint64_t>> args = {});
    void counter(std::string name, uint64_t value);

    size_t numEvents() const;
    std::vector<TraceEvent> events() const; ///< snapshot copy

    void writeJson(std::ostream &os) const;
    Status writeFile(const std::string &path) const;

    /** The installed session, or nullptr when tracing is disabled. */
    static TraceSession *active();

    /** Installs a session for a dynamic scope (restores the previous). */
    class Scope
    {
      public:
        explicit Scope(TraceSession &s);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        TraceSession *prev_;
    };

  private:
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mtx_;
    std::vector<TraceEvent> events_;
};

/**
 * RAII complete-span: records the start time on construction and emits
 * one 'X' event on destruction. A no-op (one null check) when no
 * session is active at construction time.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name, const char *cat = "phase")
        : session_(TraceSession::active()), name_(name), cat_(cat),
          start_(session_ ? session_->nowUs() : 0)
    {
    }

    /** Attach a numeric argument (shown in the viewer's detail pane). */
    void
    arg(const char *key, uint64_t value)
    {
        if (session_)
            args_.emplace_back(key, value);
    }

    ~TraceSpan()
    {
        if (session_)
            session_->complete(name_, cat_, start_,
                               session_->nowUs() - start_,
                               std::move(args_));
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    TraceSession *session_;
    const char *name_;
    const char *cat_;
    uint64_t start_;
    std::vector<std::pair<std::string, uint64_t>> args_;
};

} // namespace cobra

#endif // COBRA_OBS_TRACE_H
