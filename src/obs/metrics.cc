#include "src/obs/metrics.h"

#include <atomic>

#include "src/util/json.h"

namespace cobra {

namespace {
std::atomic<MetricsRegistry *> g_active{nullptr};
std::atomic<size_t> g_next_shard{0};
} // namespace

size_t
metricsShardIndex()
{
    thread_local size_t slot =
        g_next_shard.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

MetricsCounter *
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<MetricsCounter>();
    return slot.get();
}

MetricsGauge *
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<MetricsGauge>();
    return slot.get();
}

MetricsHistogram *
MetricsRegistry::histogram(const std::string &name, size_t num_buckets,
                           uint64_t bucket_width)
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<MetricsHistogram>(num_buckets,
                                                  bucket_width);
    return slot.get();
}

std::vector<std::string>
MetricsRegistry::counterNames() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        names.push_back(name);
    return names;
}

uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

int64_t
MetricsRegistry::gaugeValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second->value();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lk(mtx_);
    JsonWriter w(os);
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, c] : counters_)
        w.kv(name, c->value());
    w.end();
    w.key("gauges").beginObject();
    for (const auto &[name, g] : gauges_)
        w.kv(name, static_cast<int64_t>(g->value()));
    w.end();
    w.key("histograms").beginObject();
    for (const auto &[name, h] : histograms_) {
        w.key(name).beginObject()
            .kv("count", h->count())
            .kv("mean", h->mean())
            .kv("max", h->max())
            .kv("p50", h->percentile(0.50))
            .kv("p90", h->percentile(0.90))
            .kv("p99", h->percentile(0.99))
            .kv("bucket_width", h->bucketWidth())
            .end();
    }
    w.end();
    w.end();
}

MetricsRegistry *
MetricsRegistry::active()
{
    return g_active.load(std::memory_order_acquire);
}

MetricsRegistry::Scope::Scope(MetricsRegistry &r)
    : prev_(g_active.exchange(&r, std::memory_order_acq_rel))
{
}

MetricsRegistry::Scope::~Scope()
{
    g_active.store(prev_, std::memory_order_release);
}

MetricsCounter *
metricsCounter(const std::string &name)
{
    MetricsRegistry *r = MetricsRegistry::active();
    return r ? r->counter(name) : nullptr;
}

MetricsGauge *
metricsGauge(const std::string &name)
{
    MetricsRegistry *r = MetricsRegistry::active();
    return r ? r->gauge(name) : nullptr;
}

MetricsHistogram *
metricsHistogram(const std::string &name, size_t num_buckets,
                 uint64_t bucket_width)
{
    MetricsRegistry *r = MetricsRegistry::active();
    return r ? r->histogram(name, num_buckets, bucket_width) : nullptr;
}

} // namespace cobra
