/**
 * @file
 * The standard input suite (scaled stand-in for paper Table III).
 *
 * Three graph classes drive PB/COBRA behaviour: power-law (KRON-like),
 * uniform random (URND-like), and bounded-degree/high-locality
 * (ROAD/EURO-like). Matrices cover scattered ("optimization") and banded
 * ("simulation"/HPCG-like) patterns plus a symmetric one for SymPerm.
 * Sizes are scaled so the irregularly-updated vertex data is a small
 * multiple of the simulated 2MB LLC slice — the same
 * working-set-exceeds-LLC regime the paper evaluates (DESIGN.md
 * Section 5). Scale with COBRA_SCALE env var (default 1.0).
 */

#ifndef COBRA_HARNESS_INPUTS_H
#define COBRA_HARNESS_INPUTS_H

#include <memory>
#include <string>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/types.h"
#include "src/sparse/csr_matrix.h"

namespace cobra {

/** A named graph with edgelist and both CSR orientations. */
struct GraphInput
{
    std::string name;
    NodeId nodes = 0;
    EdgeList edges;
    CsrGraph out; ///< out-edge CSR
    CsrGraph in;  ///< transpose (in-edge CSR)
};

/** A named matrix with its transpose. */
struct MatrixInput
{
    std::string name;
    CsrMatrix a;
    CsrMatrix at;
    bool symmetric = false;
};

/** Integer-sort input. */
struct KeysInput
{
    std::string name;
    std::vector<uint32_t> keys;
    uint32_t maxKey = 0;
};

/** Lazily-built standard suite. */
class InputSuite
{
  public:
    /** @param scale multiplies default node/edge/nnz counts. */
    static InputSuite standard(double scale = scaleFromEnv());

    /** COBRA_SCALE env var, default 1.0 (clamped to [0.01, 64]). */
    static double scaleFromEnv();

    std::vector<std::unique_ptr<GraphInput>> graphs;
    std::vector<std::unique_ptr<MatrixInput>> matrices;
    std::vector<std::unique_ptr<KeysInput>> keySets;
    std::unique_ptr<std::vector<uint32_t>> permutation;  ///< PINV input
    std::unique_ptr<std::vector<uint32_t>> permutationM; ///< matrix-sized
    std::unique_ptr<std::vector<double>> vecX; ///< SpMV input vector

    const GraphInput &graph(const std::string &name) const;
    const MatrixInput &matrix(const std::string &name) const;
};

/** Build a single graph input by class name ("KRON", "URND", "ROAD"). */
std::unique_ptr<GraphInput> makeGraphInput(const std::string &name,
                                           NodeId nodes, uint64_t edges,
                                           uint64_t seed = 1);

} // namespace cobra

#endif // COBRA_HARNESS_INPUTS_H
