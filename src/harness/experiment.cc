#include "src/harness/experiment.h"

#include <cmath>

#include "src/util/error.h"

namespace cobra {

RunResult
Runner::run(Kernel &kernel, Technique technique,
            const RunOptions &opts) const
{
    // A fresh machine per run: no warm state leaks across techniques.
    MemoryHierarchy hier(mc.hierarchy);
    CoreModel core(mc.core);
    BranchPredictor bp(mc.branch);
    ExecCtx ctx(&hier, &core, &bp);
    PhaseRecorder rec;

    RunResult res;
    res.technique = technique;
    switch (technique) {
      case Technique::Baseline:
        kernel.runBaseline(ctx, rec);
        break;
      case Technique::PbSw:
        res.pbBins = opts.pbBins;
        kernel.runPb(ctx, rec, opts.pbBins);
        break;
      case Technique::Cobra:
        kernel.runCobra(ctx, rec, opts.cobra);
        break;
      case Technique::CobraComm: {
        CobraConfig cfg = opts.cobra;
        cfg.coalesceAtLlc = true;
        kernel.runCobra(ctx, rec, cfg);
        break;
      }
      case Technique::Phi:
        res.pbBins = opts.pbBins;
        kernel.runPhi(ctx, rec, opts.pbBins);
        break;
      case Technique::CCache:
        kernel.runCCache(ctx, rec, opts.cobra);
        break;
    }

    res.init = rec.phase(phase::kInit);
    res.binning = rec.phase(phase::kBinning);
    res.accumulate = rec.phase(phase::kAccumulate);
    if (technique == Technique::Baseline) {
        res.total = rec.phase(phase::kCompute);
    } else {
        res.total = rec.total();
    }
    res.verified = kernel.verify();
    return res;
}

Runner::PbSweep
Runner::sweepPb(Kernel &kernel,
                const std::vector<uint32_t> &candidates) const
{
    COBRA_FATAL_IF(candidates.empty(), "empty bin-count sweep");
    PbSweep sweep;
    for (uint32_t bins : candidates) {
        RunOptions o;
        o.pbBins = bins;
        sweep.runs.push_back(run(kernel, Technique::PbSw, o));
    }
    sweep.best = sweep.runs.front();
    sweep.ideal = sweep.runs.front();
    for (const RunResult &r : sweep.runs) {
        if (r.cycles() < sweep.best.cycles())
            sweep.best = r;
        // PB-SW-IDEAL: best Binning (with its Init) and best Accumulate,
        // chosen independently (paper Fig 5).
        if (r.init.cycles + r.binning.cycles <
            sweep.ideal.init.cycles + sweep.ideal.binning.cycles) {
            sweep.ideal.init = r.init;
            sweep.ideal.binning = r.binning;
        }
        if (r.accumulate.cycles < sweep.ideal.accumulate.cycles)
            sweep.ideal.accumulate = r.accumulate;
    }
    sweep.ideal.total = PhaseStats{};
    sweep.ideal.total.name = "total";
    sweep.ideal.total += sweep.ideal.init;
    sweep.ideal.total += sweep.ideal.binning;
    sweep.ideal.total += sweep.ideal.accumulate;
    sweep.ideal.pbBins = 0; // composite: no single bin count
    return sweep;
}

uint32_t
Runner::bestPbBins(Kernel &kernel,
                   const std::vector<uint32_t> &candidates) const
{
    return sweepPb(kernel, candidates).best.pbBins;
}

RunResult
Runner::pbIdeal(Kernel &kernel,
                const std::vector<uint32_t> &candidates) const
{
    return sweepPb(kernel, candidates).ideal;
}

std::vector<uint32_t>
Runner::defaultBinLadder(uint64_t num_indices)
{
    std::vector<uint32_t> ladder;
    for (uint32_t b = 16; b <= num_indices / 16 && b <= (1u << 16);
         b *= 4)
        ladder.push_back(b);
    if (ladder.empty())
        ladder.push_back(16);
    return ladder;
}

double
geoMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace cobra
