/**
 * @file
 * Multicore simulation of parallel PB / COBRA executions.
 *
 * The paper's machine is a 16-core CMP (Table II) and parallel PB is
 * built for it: every thread owns private bins and C-Buffers, so
 * Binning is synchronization-free, and Accumulate partitions bins
 * (disjoint index ranges) across threads (paper Section III-A).
 *
 * Model: each simulated core gets its own private L1/L2, local LLC
 * NUCA slice, core model, and branch predictor; work is sharded
 * contiguously; a phase ends at a barrier, so its time is the maximum
 * over cores — and the whole phase is additionally bounded from below
 * by shared DRAM bandwidth (total lines x 64B / bytes-per-cycle), the
 * resource that actually limits irregular kernels at scale.
 *
 * Host-parallel execution: because every SimCore's state (hierarchy,
 * core model, predictor) is private and phases are bulk-synchronous,
 * the between-barrier work of the simulated cores is embarrassingly
 * parallel on the host. ParallelSim dispatches each core's phase work
 * onto a ThreadPool worker and performs the max-over-cores +
 * DRAM-bandwidth-floor accounting at the barrier on the calling
 * thread. Each core consumes exactly the same address/branch stream it
 * would sequentially (cross-core-order-dependent values, e.g. the
 * baseline's shared cursors, are presequenced deterministically; all
 * replayed arrays are page-aligned and preallocated before dispatch so
 * each core's page-touch order is fixed), and the hierarchy renames
 * pages in first-touch order (MemoryHierarchy::canon), so results are
 * bit-identical for every host thread count — and across runs, heaps,
 * and ASLR. hostThreads only changes wall-clock time.
 *
 * Simplification (conservative *against* PB/COBRA): the baseline's
 * cross-core coherence traffic on shared irregularly-written lines is
 * not modeled, which can only make the baseline look better than it
 * would on real hardware. PB and COBRA never share written lines during
 * Binning, and Accumulate's bin ranges are disjoint, so they are
 * unaffected by the simplification.
 */

#ifndef COBRA_HARNESS_PARALLEL_H
#define COBRA_HARNESS_PARALLEL_H

#include <functional>
#include <memory>
#include <vector>

#include "src/core/cobra_config.h"
#include "src/graph/types.h"
#include "src/sim/machine_config.h"
#include "src/sim/noc.h"
#include "src/util/thread_pool.h"

namespace cobra {

/** Multicore machine description. */
struct MulticoreConfig
{
    uint32_t numCores = 16;
    MachineConfig perCore{};
    /** Shared DRAM bandwidth in bytes per core-clock cycle (aggregate);
     * ~42GB/s at 2.66GHz, a typical value for the paper's era. */
    double dramBytesPerCycle = 16.0;

    /** Model the 4x4-mesh NoC cost of reading remote cores' bins during
     * Accumulate (Table II). */
    bool modelNoc = true;
    MeshNoc::Config noc{};
    /** Outstanding-transfer overlap: remote reads pipeline behind
     * compute, exposing only a fraction of the raw transfer latency. */
    double nocOverlap = 4.0;

    /** Host threads simulating the cores: 0 = hardware_concurrency,
     * 1 = run inline on the calling thread. Never affects results. */
    uint32_t hostThreads = 0;
};

/** Result of one parallel execution. */
struct ParallelRunResult
{
    uint32_t cores = 0;
    double initCycles = 0;
    double binningCycles = 0;
    double accumulateCycles = 0;
    uint64_t dramLines = 0;
    bool verified = false;

    double
    totalCycles() const
    {
        return initCycles + binningCycles + accumulateCycles;
    }
};

/** Parallel simulations of the flagship kernels. */
class ParallelSim
{
  public:
    explicit ParallelSim(const MulticoreConfig &config = MulticoreConfig{});

    const MulticoreConfig &config() const { return cfg; }

    /** Host threads actually used (1 means inline execution). */
    size_t hostThreads() const { return pool ? pool->numThreads() : 1; }

    /** Baseline: cores directly apply their shard's irregular updates. */
    ParallelRunResult neighborPopulateBaseline(NodeId num_nodes,
                                               const EdgeList &el) const;

    /** Parallel software PB with per-core binners. */
    ParallelRunResult neighborPopulatePb(NodeId num_nodes,
                                         const EdgeList &el,
                                         uint32_t max_bins) const;

    /** Parallel COBRA with per-core C-Buffer hierarchies. */
    ParallelRunResult neighborPopulateCobra(NodeId num_nodes,
                                            const EdgeList &el,
                                            const CobraConfig &cc =
                                                CobraConfig{}) const;

    ParallelRunResult degreeCountBaseline(NodeId num_nodes,
                                          const EdgeList &el) const;
    ParallelRunResult degreeCountPb(NodeId num_nodes, const EdgeList &el,
                                    uint32_t max_bins) const;

  private:
    /** Run work(c) once per simulated core, on the pool when present.
     * Cores' work must touch only core-private (or presequenced) state. */
    void forEachCore(const std::function<void(uint32_t)> &work) const;

    MulticoreConfig cfg;
    /** Host execution pool; null when hostThreads resolves to 1. */
    mutable std::unique_ptr<ThreadPool> pool;
};

} // namespace cobra

#endif // COBRA_HARNESS_PARALLEL_H
