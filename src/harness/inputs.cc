#include "src/harness/inputs.h"

#include <algorithm>
#include <cstdlib>

#include "src/graph/generators.h"
#include "src/sparse/generators.h"
#include "src/sparse/reference.h"
#include "src/util/error.h"

namespace cobra {

double
InputSuite::scaleFromEnv()
{
    const char *s = std::getenv("COBRA_SCALE");
    if (!s)
        return 1.0;
    double v = std::atof(s);
    return std::clamp(v, 0.01, 64.0);
}

std::unique_ptr<GraphInput>
makeGraphInput(const std::string &name, NodeId nodes, uint64_t edges,
               uint64_t seed)
{
    auto g = std::make_unique<GraphInput>();
    g->name = name;
    g->nodes = nodes;
    if (name == "KRON") {
        g->edges = generateRmat(nodes, edges, seed);
        shuffleVertexIds(g->edges, nodes, seed + 1);
    } else if (name == "URND") {
        g->edges = generateUniform(nodes, edges, seed);
    } else if (name == "ROAD") {
        // Bounded degree, high locality; IDs deliberately not shuffled.
        uint32_t degree = static_cast<uint32_t>(
            std::max<uint64_t>(1, edges / nodes));
        g->edges = generateRoad(nodes, degree, 32, seed);
        shuffleEdgeOrder(g->edges, seed + 2);
    } else {
        COBRA_FATAL_IF(true, "unknown graph class: " << name);
    }
    g->out = CsrGraph::build(nodes, g->edges);
    g->in = CsrGraph::buildTranspose(nodes, g->edges);
    return g;
}

InputSuite
InputSuite::standard(double scale)
{
    InputSuite s;
    // Defaults: 1M vertices (vertex data = 2x the 2MB LLC slice, the
    // working-set-exceeds-cache regime the paper studies) and 3M edges;
    // COBRA_SCALE scales everything.
    const NodeId gn = static_cast<NodeId>(1024.0 * 1024.0 * scale);
    const uint64_t ge = static_cast<uint64_t>(3.0 * 1024 * 1024 * scale);

    s.graphs.push_back(makeGraphInput("KRON", gn, ge, 11));
    s.graphs.push_back(makeGraphInput("URND", gn, ge, 22));
    s.graphs.push_back(makeGraphInput("ROAD", gn, ge, 33));

    const uint32_t mn = static_cast<uint32_t>(512.0 * 1024.0 * scale);
    {
        auto m = std::make_unique<MatrixInput>();
        m->name = "SCAT"; // scattered "optimization" pattern
        m->a = CsrMatrix::fromCoo(generateScatteredMatrix(mn, 4, 44));
        m->at = transposeRef(m->a);
        s.matrices.push_back(std::move(m));
    }
    {
        auto m = std::make_unique<MatrixInput>();
        m->name = "BAND"; // banded "simulation"/HPCG-like pattern
        m->a = CsrMatrix::fromCoo(generateBandedMatrix(mn, 6, 0.5, 55));
        m->at = transposeRef(m->a);
        s.matrices.push_back(std::move(m));
    }
    {
        auto m = std::make_unique<MatrixInput>();
        m->name = "SYMM"; // symmetric pattern for SymPerm
        m->a = CsrMatrix::fromCoo(generateSymmetricMatrix(mn, 4, 66));
        m->at = transposeRef(m->a);
        m->symmetric = true;
        s.matrices.push_back(std::move(m));
    }

    {
        auto k = std::make_unique<KeysInput>();
        k->name = "KEYS";
        k->maxKey = gn;
        k->keys = generateKeys(ge, k->maxKey, 77);
        s.keySets.push_back(std::move(k));
    }

    s.permutation = std::make_unique<std::vector<uint32_t>>(
        generatePermutation(gn, 88));
    s.permutationM = std::make_unique<std::vector<uint32_t>>(
        generatePermutation(mn, 89));
    s.vecX = std::make_unique<std::vector<double>>(generateVector(mn, 99));
    return s;
}

const GraphInput &
InputSuite::graph(const std::string &name) const
{
    for (const auto &g : graphs)
        if (g->name == name)
            return *g;
    COBRA_FATAL_IF(true, "no such graph input: " << name);
}

const MatrixInput &
InputSuite::matrix(const std::string &name) const
{
    for (const auto &m : matrices)
        if (m->name == name)
            return *m;
    COBRA_FATAL_IF(true, "no such matrix input: " << name);
}

} // namespace cobra
