#include "src/harness/parallel.h"

#include <algorithm>
#include <thread>

#include "src/core/cobra_binner.h"
#include "src/graph/builder.h"
#include "src/pb/pb_binner.h"
#include "src/util/prefix_sum.h"

namespace cobra {

namespace {

/** One simulated core: private hierarchy, core model, predictor. */
struct SimCore
{
    MemoryHierarchy hier;
    CoreModel core;
    BranchPredictor bp;
    ExecCtx ctx;

    explicit SimCore(const MachineConfig &mc)
        : hier(mc.hierarchy), core(mc.core), bp(mc.branch),
          ctx(&hier, &core, &bp)
    {
    }

    double cycles() const { return core.cycles().total(); }
    uint64_t dramLines() const { return hier.dram().totalLines(); }
};

/** Per-core contiguous shard of [0, n). */
struct Shard
{
    size_t begin, end;
};

std::vector<Shard>
makeShards(size_t n, uint32_t cores)
{
    std::vector<Shard> shards(cores);
    size_t chunk = (n + cores - 1) / cores;
    for (uint32_t c = 0; c < cores; ++c) {
        shards[c].begin = std::min(n, c * chunk);
        shards[c].end = std::min(n, (c + 1) * chunk);
    }
    return shards;
}

/** Bulk-synchronous phase accounting across cores. */
class PhaseTracker
{
  public:
    explicit PhaseTracker(std::vector<std::unique_ptr<SimCore>> &cores_,
                          double dram_bytes_per_cycle)
        : cores(cores_), bw(dram_bytes_per_cycle)
    {
        markCycles.assign(cores.size(), 0.0);
        markDram.assign(cores.size(), 0);
    }

    void
    begin()
    {
        for (size_t c = 0; c < cores.size(); ++c) {
            markCycles[c] = cores[c]->cycles();
            markDram[c] = cores[c]->dramLines();
        }
    }

    /** Barrier: max core time, floored by shared DRAM bandwidth.
     * Runs on the calling thread after the phase's workers joined; the
     * fixed c-ascending reduction order keeps it deterministic. */
    double
    end(uint64_t *dram_lines_out = nullptr)
    {
        double max_cycles = 0;
        uint64_t dram = 0;
        for (size_t c = 0; c < cores.size(); ++c) {
            max_cycles = std::max(max_cycles,
                                  cores[c]->cycles() - markCycles[c]);
            dram += cores[c]->dramLines() - markDram[c];
        }
        if (dram_lines_out)
            *dram_lines_out += dram;
        const double bw_floor = static_cast<double>(dram) * kLineSize / bw;
        return std::max(max_cycles, bw_floor);
    }

  private:
    std::vector<std::unique_ptr<SimCore>> &cores;
    double bw;
    std::vector<double> markCycles;
    std::vector<uint64_t> markDram;
};

/** NoC cost (cycles) for core @p c to read @p bytes from core @p t. */
double
remoteReadCost(const MulticoreConfig &cfg, const MeshNoc &noc,
               uint32_t c, uint32_t t, uint64_t bytes)
{
    if (!cfg.modelNoc || c == t || bytes == 0)
        return 0.0;
    uint64_t lines = divCeil(bytes, kLineSize);
    return noc.transferCycles(lines, noc.hops(c, t)) / cfg.nocOverlap;
}

/**
 * Page-aligned copy of @p v. Every array the simulated cores replay
 * through ExecCtx is copied (or allocated) page-aligned so its in-page
 * layout — and with it the per-core canonicalized address stream — is
 * independent of the host allocator and of the caller's buffers.
 */
template <typename T>
AlignedArray<T, kPageSize>
pageAligned(const std::vector<T> &v)
{
    AlignedArray<T, kPageSize> out(v.size());
    std::copy(v.begin(), v.end(), out.data());
    return out;
}

/**
 * Uninstrumented prescan of each core's shard so that every binner's bin
 * memory is allocated here — on the calling thread, in core order —
 * before any phase work is dispatched to host workers. Mid-phase
 * allocation (the default finalizeInit path) would make each core's
 * page-touch order depend on host scheduling; see
 * BinStorage::preallocate.
 */
template <typename Binner>
void
preallocateBinners(const EdgeList &el, const std::vector<Shard> &shards,
                   std::vector<std::unique_ptr<Binner>> &binners)
{
    std::vector<uint32_t> cnt;
    for (size_t c = 0; c < binners.size(); ++c) {
        const BinningPlan &plan = binners[c]->storage().binningPlan();
        cnt.assign(plan.numBins, 0);
        for (size_t i = shards[c].begin; i < shards[c].end; ++i)
            ++cnt[plan.binOf(el[i].src)];
        binners[c]->storage().preallocate(cnt);
    }
}

std::vector<std::unique_ptr<SimCore>>
makeCores(const MulticoreConfig &cfg)
{
    std::vector<std::unique_ptr<SimCore>> cores;
    for (uint32_t c = 0; c < cfg.numCores; ++c)
        cores.push_back(std::make_unique<SimCore>(cfg.perCore));
    return cores;
}

} // namespace

ParallelSim::ParallelSim(const MulticoreConfig &config) : cfg(config)
{
    const uint32_t threads = cfg.hostThreads != 0
        ? cfg.hostThreads
        : std::max(1u, std::thread::hardware_concurrency());
    if (threads > 1)
        pool = std::make_unique<ThreadPool>(threads);
}

void
ParallelSim::forEachCore(const std::function<void(uint32_t)> &work) const
{
    if (!pool) {
        for (uint32_t c = 0; c < cfg.numCores; ++c)
            work(c);
        return;
    }
    pool->parallelFor(cfg.numCores,
                      [&work](size_t, size_t begin, size_t end) {
                          for (size_t c = begin; c < end; ++c)
                              work(static_cast<uint32_t>(c));
                      });
}

ParallelRunResult
ParallelSim::neighborPopulateBaseline(NodeId num_nodes,
                                      const EdgeList &el) const
{
    auto degrees = countDegreesRef(num_nodes, el);
    auto offsets = exclusivePrefixSum(degrees);
    auto edges = pageAligned(el);
    AlignedArray<EdgeOffset, kPageSize> cursor(num_nodes);
    std::copy(offsets.begin(), offsets.end() - 1, cursor.data());
    AlignedArray<NodeId, kPageSize> neighs(el.size());

    // Presequence the interleave-dependent values: replaying the edges in
    // order fixes each edge's neighbor slot to what the canonical
    // core-0-first execution produces, so every core's address stream
    // (and the output) is independent of host scheduling. The simulated
    // cores still pay for the cursor read-modify-write below.
    std::vector<EdgeOffset> pos(el.size());
    {
        std::vector<EdgeOffset> cur(offsets.begin(), offsets.end() - 1);
        for (size_t i = 0; i < el.size(); ++i)
            pos[i] = cur[el[i].src]++;
    }

    auto cores = makeCores(cfg);
    auto shards = makeShards(el.size(), cfg.numCores);
    PhaseTracker phase(cores, cfg.dramBytesPerCycle);

    ParallelRunResult res;
    res.cores = cfg.numCores;
    phase.begin();
    forEachCore([&](uint32_t c) {
        ExecCtx &ctx = cores[c]->ctx;
        for (size_t i = shards[c].begin; i < shards[c].end; ++i) {
            const Edge &e = edges[i];
            ctx.load(&e, sizeof(Edge));
            ctx.instr(3); // atomic fetch-add costs extra vs plain add
            ctx.load(&cursor[e.src], 8);
            ctx.store(&cursor[e.src], 8);
            neighs[pos[i]] = e.dst;
            ctx.store(&neighs[pos[i]], 4);
        }
    });
    res.accumulateCycles = 0;
    res.binningCycles = phase.end(&res.dramLines);
    std::vector<NodeId> out(neighs.data(), neighs.data() + neighs.size());
    res.verified = sortNeighborhoods(CsrGraph(offsets, out)) ==
        sortNeighborhoods(CsrGraph::build(num_nodes, el));
    return res;
}

ParallelRunResult
ParallelSim::neighborPopulatePb(NodeId num_nodes, const EdgeList &el,
                                uint32_t max_bins) const
{
    auto degrees = countDegreesRef(num_nodes, el);
    auto offsets = exclusivePrefixSum(degrees);
    auto edges = pageAligned(el);
    AlignedArray<EdgeOffset, kPageSize> cursor(num_nodes);
    std::copy(offsets.begin(), offsets.end() - 1, cursor.data());
    AlignedArray<NodeId, kPageSize> neighs(el.size());

    auto cores = makeCores(cfg);
    auto shards = makeShards(el.size(), cfg.numCores);
    PhaseTracker phase(cores, cfg.dramBytesPerCycle);

    BinningPlan plan = BinningPlan::forMaxBins(num_nodes, max_bins);
    std::vector<std::unique_ptr<PbBinner<NodeId>>> binners;
    for (uint32_t c = 0; c < cfg.numCores; ++c)
        binners.push_back(std::make_unique<PbBinner<NodeId>>(plan));
    preallocateBinners(el, shards, binners);

    ParallelRunResult res;
    res.cores = cfg.numCores;

    // Init: per-core counting of its shard.
    phase.begin();
    forEachCore([&](uint32_t c) {
        ExecCtx &ctx = cores[c]->ctx;
        for (size_t i = shards[c].begin; i < shards[c].end; ++i) {
            ctx.load(&edges[i].src, 4);
            ctx.instr(1);
            binners[c]->initCount(ctx, edges[i].src);
        }
        binners[c]->finalizeInit(ctx);
    });
    res.initCycles = phase.end(&res.dramLines);

    // Binning: synchronization-free, per-core binners.
    phase.begin();
    forEachCore([&](uint32_t c) {
        ExecCtx &ctx = cores[c]->ctx;
        for (size_t i = shards[c].begin; i < shards[c].end; ++i) {
            const Edge &e = edges[i];
            ctx.load(&e, sizeof(Edge));
            ctx.instr(1);
            binners[c]->insert(ctx, e.src, e.dst);
        }
        binners[c]->flush(ctx);
    });
    res.binningCycles = phase.end(&res.dramLines);

    // Accumulate: bins round-robin across cores; each core drains every
    // thread's copy of its bins (paper Algorithm 2, lines 6-11); remote
    // copies cross the mesh NoC. Bins cover disjoint index ranges, so
    // cores never touch the same cursor/neighs entries.
    MeshNoc noc(cfg.numCores, cfg.noc);
    phase.begin();
    forEachCore([&](uint32_t c) {
        ExecCtx &ctx = cores[c]->ctx;
        for (uint32_t b = c; b < plan.numBins; b += cfg.numCores) {
            for (uint32_t t = 0; t < cfg.numCores; ++t) {
                ctx.stall(remoteReadCost(
                    cfg, noc, c, t,
                    binners[t]->storage().bin(b).size() *
                        sizeof(BinTuple<NodeId>)));
                binners[t]->forEachInBin(
                    ctx, b, [&](const BinTuple<NodeId> &tp) {
                        ctx.instr(1);
                        ctx.load(&cursor[tp.index], 8);
                        EdgeOffset pos = cursor[tp.index]++;
                        ctx.store(&cursor[tp.index], 8);
                        neighs[pos] = tp.payload;
                        ctx.store(&neighs[pos], 4);
                    });
            }
        }
    });
    res.accumulateCycles = phase.end(&res.dramLines);

    std::vector<NodeId> out(neighs.data(), neighs.data() + neighs.size());
    res.verified = sortNeighborhoods(CsrGraph(offsets, out)) ==
        sortNeighborhoods(CsrGraph::build(num_nodes, el));
    return res;
}

ParallelRunResult
ParallelSim::neighborPopulateCobra(NodeId num_nodes, const EdgeList &el,
                                   const CobraConfig &cc) const
{
    auto degrees = countDegreesRef(num_nodes, el);
    auto offsets = exclusivePrefixSum(degrees);
    auto edges = pageAligned(el);
    AlignedArray<EdgeOffset, kPageSize> cursor(num_nodes);
    std::copy(offsets.begin(), offsets.end() - 1, cursor.data());
    AlignedArray<NodeId, kPageSize> neighs(el.size());

    auto cores = makeCores(cfg);
    auto shards = makeShards(el.size(), cfg.numCores);
    PhaseTracker phase(cores, cfg.dramBytesPerCycle);

    std::vector<std::unique_ptr<CobraBinner<NodeId>>> binners;
    for (uint32_t c = 0; c < cfg.numCores; ++c)
        binners.push_back(std::make_unique<CobraBinner<NodeId>>(
            cores[c]->ctx, cc, num_nodes));
    preallocateBinners(el, shards, binners);

    ParallelRunResult res;
    res.cores = cfg.numCores;

    phase.begin();
    forEachCore([&](uint32_t c) {
        ExecCtx &ctx = cores[c]->ctx;
        for (size_t i = shards[c].begin; i < shards[c].end; ++i) {
            ctx.load(&edges[i].src, 4);
            ctx.instr(1);
            binners[c]->initCount(ctx, edges[i].src);
        }
        binners[c]->finalizeInit(ctx);
    });
    res.initCycles = phase.end(&res.dramLines);

    phase.begin();
    forEachCore([&](uint32_t c) {
        ExecCtx &ctx = cores[c]->ctx;
        binners[c]->beginBinning(ctx);
        for (size_t i = shards[c].begin; i < shards[c].end; ++i) {
            const Edge &e = edges[i];
            ctx.load(&e, sizeof(Edge));
            ctx.instr(1);
            binners[c]->update(ctx, e.src, e.dst);
        }
        binners[c]->flush(ctx);
        binners[c]->releaseWays(ctx);
    });
    res.binningCycles = phase.end(&res.dramLines);

    MeshNoc noc(cfg.numCores, cfg.noc);
    phase.begin();
    const uint32_t num_bins = binners[0]->numBins();
    forEachCore([&](uint32_t c) {
        ExecCtx &ctx = cores[c]->ctx;
        for (uint32_t b = c; b < num_bins; b += cfg.numCores) {
            for (uint32_t t = 0; t < cfg.numCores; ++t) {
                ctx.stall(remoteReadCost(
                    cfg, noc, c, t,
                    binners[t]->storage().bin(b).size() *
                        sizeof(BinTuple<NodeId>)));
                binners[t]->forEachInBin(
                    ctx, b, [&](const BinTuple<NodeId> &tp) {
                        ctx.instr(1);
                        ctx.load(&cursor[tp.index], 8);
                        EdgeOffset pos = cursor[tp.index]++;
                        ctx.store(&cursor[tp.index], 8);
                        neighs[pos] = tp.payload;
                        ctx.store(&neighs[pos], 4);
                    });
            }
        }
    });
    res.accumulateCycles = phase.end(&res.dramLines);

    std::vector<NodeId> out(neighs.data(), neighs.data() + neighs.size());
    res.verified = sortNeighborhoods(CsrGraph(offsets, out)) ==
        sortNeighborhoods(CsrGraph::build(num_nodes, el));
    return res;
}

ParallelRunResult
ParallelSim::degreeCountBaseline(NodeId num_nodes,
                                 const EdgeList &el) const
{
    auto edges = pageAligned(el);
    AlignedArray<uint32_t, kPageSize> deg(num_nodes);
    auto cores = makeCores(cfg);
    auto shards = makeShards(el.size(), cfg.numCores);
    PhaseTracker phase(cores, cfg.dramBytesPerCycle);

    ParallelRunResult res;
    res.cores = cfg.numCores;
    phase.begin();
    forEachCore([&](uint32_t c) {
        ExecCtx &ctx = cores[c]->ctx;
        for (size_t i = shards[c].begin; i < shards[c].end; ++i) {
            const Edge &e = edges[i];
            ctx.load(&e, sizeof(Edge));
            ctx.instr(3); // atomic increment
            ctx.load(&deg[e.src], 4);
            // Increments commute: a relaxed atomic add keeps the shared
            // functional update exact under host parallelism (the
            // simulated cost is the instr(3) above, as before).
            __atomic_fetch_add(&deg[e.src], 1u, __ATOMIC_RELAXED);
            ctx.store(&deg[e.src], 4);
        }
    });
    res.binningCycles = phase.end(&res.dramLines);

    auto ref = countDegreesRef(num_nodes, el);
    res.verified = std::equal(ref.begin(), ref.end(), deg.data());
    return res;
}

ParallelRunResult
ParallelSim::degreeCountPb(NodeId num_nodes, const EdgeList &el,
                           uint32_t max_bins) const
{
    auto edges = pageAligned(el);
    AlignedArray<uint32_t, kPageSize> deg(num_nodes);
    auto cores = makeCores(cfg);
    auto shards = makeShards(el.size(), cfg.numCores);
    PhaseTracker phase(cores, cfg.dramBytesPerCycle);

    BinningPlan plan = BinningPlan::forMaxBins(num_nodes, max_bins);
    std::vector<std::unique_ptr<PbBinner<NoPayload>>> binners;
    for (uint32_t c = 0; c < cfg.numCores; ++c)
        binners.push_back(std::make_unique<PbBinner<NoPayload>>(plan));
    preallocateBinners(el, shards, binners);

    ParallelRunResult res;
    res.cores = cfg.numCores;

    phase.begin();
    forEachCore([&](uint32_t c) {
        ExecCtx &ctx = cores[c]->ctx;
        for (size_t i = shards[c].begin; i < shards[c].end; ++i) {
            ctx.load(&edges[i].src, 4);
            ctx.instr(1);
            binners[c]->initCount(ctx, edges[i].src);
        }
        binners[c]->finalizeInit(ctx);
    });
    res.initCycles = phase.end(&res.dramLines);

    phase.begin();
    forEachCore([&](uint32_t c) {
        ExecCtx &ctx = cores[c]->ctx;
        for (size_t i = shards[c].begin; i < shards[c].end; ++i) {
            ctx.load(&edges[i], sizeof(Edge));
            ctx.instr(1);
            binners[c]->insert(ctx, edges[i].src, NoPayload{});
        }
        binners[c]->flush(ctx);
    });
    res.binningCycles = phase.end(&res.dramLines);

    MeshNoc noc(cfg.numCores, cfg.noc);
    phase.begin();
    forEachCore([&](uint32_t c) {
        ExecCtx &ctx = cores[c]->ctx;
        for (uint32_t b = c; b < plan.numBins; b += cfg.numCores) {
            for (uint32_t t = 0; t < cfg.numCores; ++t) {
                ctx.stall(remoteReadCost(
                    cfg, noc, c, t,
                    binners[t]->storage().bin(b).size() *
                        sizeof(BinTuple<NoPayload>)));
                binners[t]->forEachInBin(
                    ctx, b, [&](const BinTuple<NoPayload> &tp) {
                        ctx.instr(1);
                        ctx.load(&deg[tp.index], 4);
                        ++deg[tp.index];
                        ctx.store(&deg[tp.index], 4);
                    });
            }
        }
    });
    res.accumulateCycles = phase.end(&res.dramLines);

    auto ref = countDegreesRef(num_nodes, el);
    res.verified = std::equal(ref.begin(), ref.end(), deg.data());
    return res;
}

} // namespace cobra
