/**
 * @file
 * Experiment runner: executes a kernel under a technique on a fresh
 * simulated machine and collects the metrics the paper's tables and
 * figures report.
 */

#ifndef COBRA_HARNESS_EXPERIMENT_H
#define COBRA_HARNESS_EXPERIMENT_H

#include <vector>

#include "src/kernels/kernel.h"
#include "src/sim/machine_config.h"
#include "src/sim/phase_recorder.h"

namespace cobra {

/** Everything measured in one kernel execution. */
struct RunResult
{
    Technique technique = Technique::Baseline;
    uint32_t pbBins = 0;       ///< bins used (PB/PHI)
    PhaseStats init;           ///< bin sizing (empty for baseline)
    PhaseStats binning;
    PhaseStats accumulate;
    PhaseStats total;
    bool verified = false;

    double cycles() const { return total.cycles; }
};

/** Options for one run. */
struct RunOptions
{
    uint32_t pbBins = 1024;      ///< PB/PHI bin-count cap
    CobraConfig cobra{};         ///< COBRA configuration
};

/**
 * Runs kernels on freshly-constructed simulated machines (per Table II
 * unless overridden).
 */
class Runner
{
  public:
    explicit Runner(const MachineConfig &machine = MachineConfig{})
        : mc(machine)
    {
    }

    const MachineConfig &machine() const { return mc; }

    /** Execute @p kernel under @p technique and verify the output. */
    RunResult run(Kernel &kernel, Technique technique,
                  const RunOptions &opts = RunOptions{}) const;

    /** Results of one bin-count sweep, computed from single runs. */
    struct PbSweep
    {
        std::vector<RunResult> runs; ///< one per candidate, in order
        RunResult best;              ///< minimum-total-cycles run
        RunResult ideal;             ///< PB-SW-IDEAL composition
    };

    /**
     * Run PB once per candidate bin count and derive both the best run
     * (the paper's per-workload/input bin-range selection) and the
     * PB-SW-IDEAL composition — without re-running anything.
     */
    PbSweep sweepPb(Kernel &kernel,
                    const std::vector<uint32_t> &candidates) const;

    /**
     * Sweep @p candidates and return the bin count minimizing total PB
     * cycles (the paper's per-workload/input best-bin-range selection).
     */
    uint32_t bestPbBins(Kernel &kernel,
                        const std::vector<uint32_t> &candidates) const;

    /**
     * PB-SW-IDEAL (paper Figs 5, 10): the unrealizable execution that
     * uses the best bin count for Binning and, independently, the best
     * bin count for Accumulate. Composed from sweep results: minimal
     * init+binning cycles plus minimal accumulate cycles.
     */
    RunResult pbIdeal(Kernel &kernel,
                      const std::vector<uint32_t> &candidates) const;

    /** Default bin-count sweep ladder for an index namespace size. */
    static std::vector<uint32_t> defaultBinLadder(uint64_t num_indices);

  private:
    MachineConfig mc;
};

/** speedup of @p opt over @p base (>1 means opt is faster). */
inline double
speedup(const RunResult &base, const RunResult &opt)
{
    return opt.cycles() > 0 ? base.cycles() / opt.cycles() : 0.0;
}

/** Geometric mean helper for "mean speedup" rows. */
double geoMean(const std::vector<double> &xs);

} // namespace cobra

#endif // COBRA_HARNESS_EXPERIMENT_H
