/**
 * @file
 * AVX2 batch binning: 8 bin indices per iteration via variable-count
 * vector shift + unsigned min (the clamp of BinningPlan::binOf).
 *
 * This translation unit is the only one in the library compiled with
 * -mavx2 (gated by the COBRA_NATIVE_ARCH CMake option), so the rest of
 * the binary stays runnable on any x86-64; callers reach this code only
 * through the runtime dispatch in simd_binning.cc.
 */

#include "src/pb/simd_binning.h"

#include <immintrin.h>

namespace cobra {

void
binBatchAvx2(const uint32_t *indices, size_t n, uint32_t range_shift,
             uint32_t num_bins, uint32_t *bins_out)
{
    const __m128i shift =
        _mm_cvtsi32_si128(static_cast<int>(range_shift));
    const __m256i cap =
        _mm256_set1_epi32(static_cast<int>(num_bins - 1));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(indices + i));
        v = _mm256_srl_epi32(v, shift);
        v = _mm256_min_epu32(v, cap);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(bins_out + i),
                            v);
    }
    if (i < n)
        binBatchScalar(indices + i, n - i, range_shift, num_bins,
                       bins_out + i);
}

} // namespace cobra
