/**
 * @file
 * Update-tuple types shared by software PB and COBRA.
 *
 * An update tuple is an (index, payload) pair: the index names the
 * irregularly-accessed element and the payload carries whatever the
 * update needs (paper Section III-A). Payload-free kernels
 * (Degree-Counting, Integer Sort) use 4B tuples; Neighbor-Populate and
 * Pagerank use 8B; the sparse kernels use 16B (paper Section VI).
 */

#ifndef COBRA_PB_TUPLE_H
#define COBRA_PB_TUPLE_H

#include <cstdint>
#include <type_traits>

namespace cobra {

/** Marker for tuples that are just an index. */
struct NoPayload
{
    bool operator==(const NoPayload &) const { return true; }
};

/** Generic update tuple. */
template <typename Payload>
struct BinTuple
{
    uint32_t index;
    Payload payload;
};

/** Payload-free specialization: 4-byte tuples. */
template <>
struct BinTuple<NoPayload>
{
    uint32_t index;
};

static_assert(sizeof(BinTuple<NoPayload>) == 4);
static_assert(sizeof(BinTuple<uint32_t>) == 8);
static_assert(sizeof(BinTuple<float>) == 8);
static_assert(sizeof(BinTuple<double>) == 16);

/**
 * Payload carrying a second index plus a double value, packed to 12B so
 * the full tuple is exactly 16B (the paper's sparse-kernel tuple size).
 * Used by Transpose (source row, value) and SymPerm (dest column, value).
 */
struct IdxValPayload
{
    uint32_t other;
    uint32_t lo;
    uint32_t hi;

    static IdxValPayload
    make(uint32_t other_index, double v)
    {
        uint64_t bits;
        __builtin_memcpy(&bits, &v, 8);
        return IdxValPayload{other_index, static_cast<uint32_t>(bits),
                             static_cast<uint32_t>(bits >> 32)};
    }

    double
    value() const
    {
        uint64_t bits = (static_cast<uint64_t>(hi) << 32) | lo;
        double v;
        __builtin_memcpy(&v, &bits, 8);
        return v;
    }
};

static_assert(sizeof(BinTuple<IdxValPayload>) == 16);

inline bool
operator==(const IdxValPayload &a, const IdxValPayload &b)
{
    return a.other == b.other && a.lo == b.lo && a.hi == b.hi;
}

/**
 * Tuple equality, uniform across the payload-free specialization (used
 * by the binning-engine equivalence tests, which compare whole per-bin
 * tuple sequences across engines).
 */
template <typename Payload>
inline bool
operator==(const BinTuple<Payload> &a, const BinTuple<Payload> &b)
{
    if constexpr (std::is_same_v<Payload, NoPayload>)
        return a.index == b.index;
    else
        return a.index == b.index && a.payload == b.payload;
}

/** Construct a tuple uniformly for any payload type. */
template <typename Payload>
inline BinTuple<Payload>
makeTuple(uint32_t index, const Payload &payload)
{
    if constexpr (std::is_same_v<Payload, NoPayload>)
        return BinTuple<Payload>{index};
    else
        return BinTuple<Payload>{index, payload};
}

} // namespace cobra

#endif // COBRA_PB_TUPLE_H
