/**
 * @file
 * In-memory bins with the paper's sequential layout.
 *
 * To avoid dynamic allocation during Binning, PB precomputes the number
 * of tuples per bin (the Init phase of Table I), lays all bins out
 * contiguously, and appends through per-bin cursors — the BinOffset array
 * of paper Section V-E. Both software PB and COBRA spill into this
 * structure; COBRA additionally stores the cursors in repurposed LLC tag
 * bits (modeled as zero extra storage).
 */

#ifndef COBRA_PB_BIN_STORAGE_H
#define COBRA_PB_BIN_STORAGE_H

#include <span>
#include <vector>

#include "src/pb/bin_range.h"
#include "src/pb/tuple.h"
#include "src/sim/exec_ctx.h"
#include "src/util/error.h"
#include "src/util/prefix_sum.h"

namespace cobra {

/** Static instrumentation sites (branch "PCs" fed to the gshare model). */
namespace branch_site {
constexpr uint64_t kPbBufferFull = 0x1000;
constexpr uint64_t kPbFlushLoop = 0x1040;
constexpr uint64_t kAccumulateLoop = 0x1080;
constexpr uint64_t kKernelBase = 0x8000;
} // namespace branch_site

/** Contiguous per-bin tuple storage with append cursors. */
template <typename Payload>
class BinStorage
{
  public:
    using Tuple = BinTuple<Payload>;

    explicit BinStorage(const BinningPlan &plan_)
        : plan(plan_), counts(plan_.numBins, 0)
    {
    }

    const BinningPlan &binningPlan() const { return plan; }
    uint32_t numBins() const { return plan.numBins; }

    /**
     * Init phase: count one future tuple for @p index. Models the
     * streaming counting pass (one increment of a counter array that
     * comfortably fits in cache for realistic bin counts).
     */
    void
    countInsert(ExecCtx &ctx, uint32_t index)
    {
        uint32_t b = plan.binOf(index);
        ctx.instr(1);
        ctx.load(&counts[b], 4);
        ++counts[b];
        ctx.store(&counts[b], 4);
    }

    /** Init phase: prefix-sum the counts and allocate the bin memory. */
    void
    finalizeInit(ExecCtx &ctx)
    {
        COBRA_PANIC_IF(finalized, "finalizeInit called twice");
        std::vector<uint64_t> wide(counts.begin(), counts.end());
        starts = exclusivePrefixSum(wide);
        cursors.assign(starts.begin(), starts.end() - 1);
        data.resize(starts.back());
        // Prefix-sum cost: one load+add+store per bin.
        for (uint32_t b = 0; b < numBins(); ++b) {
            ctx.instr(1);
            ctx.load(&counts[b], 4);
            ctx.store(&starts[b], 8);
        }
        finalized = true;
    }

    /**
     * Reserve space for @p n tuples in @p bin and bump its cursor
     * (BinOffset). Returns the destination; the caller copies tuples and
     * accounts the store traffic (software PB uses non-temporal stores,
     * COBRA writes full lines on LLC C-Buffer eviction).
     */
    Tuple *
    appendRaw(uint32_t bin, uint32_t n)
    {
        COBRA_PANIC_IF(!finalized, "appendRaw before finalizeInit");
        uint64_t pos = cursors[bin];
        COBRA_PANIC_IF(pos + n > starts[bin + 1],
                       "bin " << bin << " overflow: init undercounted");
        cursors[bin] += n;
        return data.data() + pos;
    }

    /** Tuples actually present in @p bin (may be < capacity after
     * commutative coalescing). */
    std::span<const Tuple>
    bin(uint32_t b) const
    {
        return {data.data() + starts[b],
                static_cast<size_t>(cursors[b] - starts[b])};
    }

    /** Address of the BinOffset cursor (for instrumentation). */
    const uint64_t *cursorAddr(uint32_t b) const { return &cursors[b]; }

    uint64_t
    totalTuples() const
    {
        uint64_t n = 0;
        for (uint32_t b = 0; b < numBins(); ++b)
            n += cursors[b] - starts[b];
        return n;
    }

    uint64_t capacityTuples() const { return data.size(); }

    /** Rewind cursors so Binning can run again (multi-iteration kernels). */
    void
    resetCursors()
    {
        COBRA_PANIC_IF(!finalized, "resetCursors before finalizeInit");
        cursors.assign(starts.begin(), starts.end() - 1);
    }

  private:
    BinningPlan plan;
    std::vector<uint32_t> counts; ///< 4B counters keep the pass compact
    std::vector<uint64_t> starts;  ///< per-bin base offsets (+ total)
    std::vector<uint64_t> cursors; ///< BinOffset array
    std::vector<Tuple> data;
    bool finalized = false;
};

} // namespace cobra

#endif // COBRA_PB_BIN_STORAGE_H
