/**
 * @file
 * In-memory bins with the paper's sequential layout.
 *
 * To avoid dynamic allocation during Binning, PB precomputes the number
 * of tuples per bin (the Init phase of Table I), lays all bins out
 * contiguously, and appends through per-bin cursors — the BinOffset array
 * of paper Section V-E. Both software PB and COBRA spill into this
 * structure; COBRA additionally stores the cursors in repurposed LLC tag
 * bits (modeled as zero extra storage).
 */

#ifndef COBRA_PB_BIN_STORAGE_H
#define COBRA_PB_BIN_STORAGE_H

#include <span>
#include <vector>

#include "src/check/fault_injector.h"
#include "src/pb/bin_range.h"
#include "src/pb/tuple.h"
#include "src/sim/exec_ctx.h"
#include "src/util/aligned_array.h"
#include "src/util/error.h"

namespace cobra {

/** Static instrumentation sites (branch "PCs" fed to the gshare model). */
namespace branch_site {
constexpr uint64_t kPbBufferFull = 0x1000;
constexpr uint64_t kPbFlushLoop = 0x1040;
constexpr uint64_t kAccumulateLoop = 0x1080;
constexpr uint64_t kKernelBase = 0x8000;
} // namespace branch_site

/** Contiguous per-bin tuple storage with append cursors. */
template <typename Payload>
class BinStorage
{
  public:
    using Tuple = BinTuple<Payload>;

    /**
     * @param align_bins pad every bin's start offset to a cache-line
     * boundary. The native write-combining engines need this: a full
     * C-Buffer drains as aligned 64B non-temporal bursts, which is only
     * legal when the destination cursor is line-aligned — guaranteed
     * when every bin starts on a line and advances one full line per
     * drain. Simulated/scalar storage keeps the paper's packed layout.
     */
    explicit BinStorage(const BinningPlan &plan_, bool align_bins = false)
        : plan(plan_), alignBins(align_bins), counts(plan_.numBins)
    {
    }

    const BinningPlan &binningPlan() const { return plan; }
    uint32_t numBins() const { return plan.numBins; }

    /**
     * Init phase: count one future tuple for @p index. Models the
     * streaming counting pass (one increment of a counter array that
     * comfortably fits in cache for realistic bin counts).
     */
    void
    countInsert(ExecCtx &ctx, uint32_t index)
    {
        uint32_t b = plan.binOf(index);
        ctx.instr(1);
        ctx.load(&counts[b], 4);
        ++counts[b];
        ctx.store(&counts[b], 4);
    }

    /**
     * Pre-size starts/cursors/data from externally computed final counts
     * so finalizeInit needs no allocation. The host-parallel simulator
     * uses this: every address a simulated core will touch must be
     * fixed before phase work is dispatched to workers, so that each
     * core's page-touch order (which drives the hierarchy's address
     * canonicalization) stays host-schedule-independent. Purely
     * functional: no ExecCtx cost, and the Init phase still pays for
     * its counting + prefix sum as usual.
     */
    void
    preallocate(const std::vector<uint32_t> &final_counts)
    {
        COBRA_PANIC_IF(finalized, "preallocate after finalizeInit");
        COBRA_PANIC_IF(final_counts.size() != counts.size(),
                       "preallocate count size mismatch");
        layOut(final_counts.data());
        preallocated = true;
    }

    /** Init phase: prefix-sum the counts and allocate the bin memory. */
    void
    finalizeInit(ExecCtx &ctx)
    {
        COBRA_PANIC_IF(finalized, "finalizeInit called twice");
        // Cancellation checkpoint + stall site: once per Init per
        // binner (cold), and right before the layout allocation so a
        // cancelled run never pays for bin memory it will not use.
        cancellationPoint();
        if (auto *fi = FaultInjector::active(); fi) [[unlikely]]
            if (fi->fire(FaultSite::kPbStallInit, 0))
                fi->stall();
        if (preallocated) {
            // Allocation-free replay: verify the prescan against the
            // counted inserts and rebuild the cursors in place.
            uint64_t run = 0;
            for (uint32_t b = 0; b < numBins(); ++b) {
                run = padStart(run);
                COBRA_PANIC_IF(starts[b] != run,
                               "preallocate/init mismatch at bin " << b);
                run += counts[b];
                cursors[b] = starts[b];
            }
            COBRA_PANIC_IF(run != starts[numBins()],
                           "preallocate/init total mismatch");
        } else {
            layOut(counts.data());
        }
        // Prefix-sum cost: one load+add+store per bin.
        for (uint32_t b = 0; b < numBins(); ++b) {
            ctx.instr(1);
            ctx.load(&counts[b], 4);
            ctx.store(&starts[b], 8);
        }
        // Injection point: a BinOffset cursor comes out of Init off by
        // one (models a corrupted tag-resident cursor, Section V-E).
        if (auto *fi = FaultInjector::active(); fi) [[unlikely]] {
            for (uint32_t b = 0; b < numBins(); ++b)
                if (fi->fire(FaultSite::kBinOffsetSkew, b))
                    cursors[b] += fi->skewAmount();
        }
        finalized = true;
    }

    /**
     * Reserve space for @p n tuples in @p bin and bump its cursor
     * (BinOffset). Returns the destination; the caller copies tuples and
     * accounts the store traffic (software PB uses non-temporal stores,
     * COBRA writes full lines on LLC C-Buffer eviction).
     *
     * If the bin is already at the capacity Init planned (possible only
     * when the update stream was corrupted, replayed, or the cursors
     * were skewed), the append degrades to the overflow region instead
     * of aborting: the run completes, overflowTuples() exposes the spill
     * for the oracle, and a warning is emitted once. The returned
     * pointer is valid until the next appendRaw call.
     */
    Tuple *
    appendRaw(uint32_t bin, uint32_t n)
    {
        COBRA_PANIC_IF(!finalized, "appendRaw before finalizeInit");
        uint64_t pos = cursors[bin];
        if (pos + n > starts[bin + 1]) [[unlikely]]
            return overflowAppend(bin, n);
        cursors[bin] += n;
        return data.data() + pos;
    }

    /** Tuples actually present in @p bin (may be < capacity after
     * commutative coalescing). */
    std::span<const Tuple>
    bin(uint32_t b) const
    {
        return {data.data() + starts[b],
                static_cast<size_t>(cursors[b] - starts[b])};
    }

    /** Address of the BinOffset cursor (for instrumentation). */
    const uint64_t *cursorAddr(uint32_t b) const { return &cursors[b]; }

    /**
     * Per-bin tuple counts as established by the Init counting pass.
     * Valid once all countInsert calls have happened (the hierarchical
     * engine derives its coarse-level layout from these at
     * finalizeInit, instead of paying a second counter array in the
     * Init hot loop).
     */
    const uint32_t *initCounts() const { return counts.data(); }

    uint64_t
    totalTuples() const
    {
        uint64_t n = overflowCount;
        for (uint32_t b = 0; b < numBins(); ++b)
            n += cursors[b] - starts[b];
        return n;
    }

    uint64_t capacityTuples() const { return data.size(); }

    /** Tuples that missed their planned bin and spilled (0 when sane). */
    uint64_t overflowTuples() const { return overflowCount; }
    bool hasOverflow() const { return overflowCount != 0; }

    /** Stream the spilled tuples of @p b (complements bin(b)). */
    template <typename Fn>
    void
    forEachOverflowInBin(uint32_t b, Fn &&fn) const
    {
        for (const OverflowRun &r : overflowRuns)
            if (r.bin == b)
                for (uint32_t i = 0; i < r.count; ++i)
                    fn(overflowData[r.offset + i]);
    }

    /** Rewind cursors so Binning can run again (multi-iteration kernels). */
    void
    resetCursors()
    {
        COBRA_PANIC_IF(!finalized, "resetCursors before finalizeInit");
        for (uint32_t b = 0; b < numBins(); ++b)
            cursors[b] = starts[b];
        overflowData.clear();
        overflowRuns.clear();
        overflowCount = 0;
    }

  private:
    struct OverflowRun
    {
        uint32_t bin;
        size_t offset; ///< into overflowData
        uint32_t count;
    };

    /** Cold path of appendRaw: spill past-capacity tuples. */
    Tuple *
    overflowAppend(uint32_t bin, uint32_t n)
    {
        if (overflowRuns.empty())
            warn("bin " + std::to_string(bin) +
                 " exceeded its Init-planned capacity; spilling to the "
                 "overflow region (corrupted or replayed update stream?)");
        size_t off = overflowData.size();
        overflowData.resize(off + n);
        overflowRuns.push_back(OverflowRun{bin, off, n});
        overflowCount += n;
        return overflowData.data() + off;
    }

    /** Next legal bin start at/after @p run (identity when unaligned). */
    uint64_t
    padStart(uint64_t run) const
    {
        if (!alignBins)
            return run;
        constexpr uint64_t kTuplesPerLine = kLineSize / sizeof(Tuple);
        return (run + kTuplesPerLine - 1) / kTuplesPerLine *
            kTuplesPerLine;
    }

    /** Build starts/cursors/data from @p final_counts (numBins values). */
    void
    layOut(const uint32_t *final_counts)
    {
        starts = AlignedArray<uint64_t, kPageSize>(numBins() + 1);
        cursors = AlignedArray<uint64_t, kPageSize>(numBins());
        uint64_t run = 0;
        for (uint32_t b = 0; b < numBins(); ++b) {
            run = padStart(run);
            starts[b] = cursors[b] = run;
            run += final_counts[b];
        }
        starts[numBins()] = run;
        data = AlignedArray<Tuple, kPageSize>(run);
    }

    // All four arrays are fed to ExecCtx::load/store, so they are page-
    // aligned: their in-page layout (hence their simulated cache
    // behavior under the hierarchy's page renaming) is independent of
    // the host allocator. See kPageSize in src/mem/types.h.
    BinningPlan plan;
    bool alignBins = false; ///< line-align bin starts (WC engines)
    AlignedArray<uint32_t, kPageSize> counts; ///< 4B counters (compact)
    AlignedArray<uint64_t, kPageSize> starts; ///< per-bin offsets (+ total)
    AlignedArray<uint64_t, kPageSize> cursors; ///< BinOffset array
    AlignedArray<Tuple, kPageSize> data;
    // Overflow region: never touched on sane runs (kept off the page-
    // aligned replayed arrays; overflow traffic is not simulated).
    std::vector<Tuple> overflowData;
    std::vector<OverflowRun> overflowRuns;
    uint64_t overflowCount = 0;
    bool finalized = false;
    bool preallocated = false;
};

} // namespace cobra

#endif // COBRA_PB_BIN_STORAGE_H
