/**
 * @file
 * Software Propagation Blocking binner (paper Section III).
 *
 * The Binning phase buffers update tuples through per-bin, cacheline-
 * sized coalescing buffers (C-Buffers) so that in-memory bins are only
 * written in 64B bulk non-temporal stores. Everything here is plain
 * software: the C-Buffer bookkeeping executes real (counted) instructions
 * including the buffer-full check branch after every insertion — the two
 * overheads COBRA eliminates (paper Sections III-C, IV).
 *
 * A PbBinner is a per-thread structure (parallel PB duplicates all bins
 * and C-Buffers per thread; no synchronization during Binning).
 */

#ifndef COBRA_PB_PB_BINNER_H
#define COBRA_PB_PB_BINNER_H

#include <cstring>

#include "src/pb/bin_storage.h"
#include "src/util/aligned_array.h"
#include "src/util/stream_copy.h"

namespace cobra {

/** Software PB binner for one thread. */
template <typename Payload>
class PbBinner
{
  public:
    using Tuple = BinTuple<Payload>;
    static constexpr uint32_t kTuplesPerBuffer =
        kLineSize / static_cast<uint32_t>(sizeof(Tuple));

    explicit PbBinner(const BinningPlan &plan)
        : store(plan),
          cbufs(static_cast<size_t>(plan.numBins) * kTuplesPerBuffer),
          counts(plan.numBins)
    {
    }

    BinStorage<Payload> &storage() { return store; }
    const BinningPlan &plan() const { return store.binningPlan(); }
    uint32_t numBins() const { return store.numBins(); }

    /** Bytes of C-Buffer + counter state (the Binning working set). */
    uint64_t
    cbufFootprintBytes() const
    {
        return static_cast<uint64_t>(numBins()) * kLineSize +
            static_cast<uint64_t>(numBins()) * sizeof(uint32_t);
    }

    /** Init phase: see BinStorage. */
    void initCount(ExecCtx &ctx, uint32_t index)
    {
        store.countInsert(ctx, index);
    }

    void finalizeInit(ExecCtx &ctx) { store.finalizeInit(ctx); }

    /**
     * Binning phase: insert one update tuple (paper Algorithm 2, lines
     * 3-5, plus the C-Buffer management of Section III-C).
     */
    void
    insert(ExecCtx &ctx, uint32_t index, const Payload &payload)
    {
        // Deliberately hook-free: this is the hottest loop in the
        // library, and even a predicted null check per tuple is
        // measurable. All injection points live on the per-line drain
        // path below (amortized kTuplesPerBuffer times).
        const uint32_t b = plan().binOf(index);
        ctx.instr(2); // shift + buffer address arithmetic

        uint32_t &cnt = counts[b];
        ctx.load(&cnt, sizeof(cnt));

        Tuple *buf = &cbufs[static_cast<size_t>(b) * kTuplesPerBuffer];
        buf[cnt] = makeTuple<Payload>(index, payload);
        ctx.store(&buf[cnt], sizeof(Tuple));

        ++cnt;
        ctx.instr(1);
        ctx.store(&cnt, sizeof(cnt));

        const bool full = cnt == kTuplesPerBuffer;
        ctx.branch(branch_site::kPbBufferFull, full);
        if (full)
            drainBuffer(ctx, b);
    }

    /** End of Binning: flush every non-empty C-Buffer (partial lines). */
    void
    flush(ExecCtx &ctx)
    {
        for (uint32_t b = 0; b < numBins(); ++b) {
            ctx.load(&counts[b], sizeof(uint32_t));
            ctx.branch(branch_site::kPbFlushLoop, counts[b] != 0);
            if (counts[b] != 0)
                drainBuffer(ctx, b);
        }
        // Native drains used weakly-ordered NT stores: fence before the
        // Binning/Accumulate barrier hands these bins to other threads.
        if (!ctx.simulated())
            streamFence();
    }

    /**
     * Accumulate phase: stream the tuples of @p bin in order, invoking
     * fn(tuple) for each (paper Algorithm 2, lines 6-11 drive this).
     */
    template <typename Fn>
    void
    forEachInBin(ExecCtx &ctx, uint32_t bin, Fn &&fn)
    {
        // Per-bin (not per-tuple) cancellation checkpoint + stall site.
        cancellationPoint();
        if (auto *fi = FaultInjector::active(); fi) [[unlikely]]
            if (fi->fire(FaultSite::kPbStallAccumulate, bin))
                fi->stall();
        auto tuples = store.bin(bin);
        // Native fast path: the tuple stream defeats no prefetcher, but
        // the bins live in DRAM after NT-store drains, so fetching a few
        // lines ahead hides the cold-miss latency of each new line.
        constexpr size_t kTuplesPerLine = kLineSize / sizeof(Tuple);
        constexpr size_t kPrefetchAhead = 4 * kTuplesPerLine;
        const bool native = !ctx.simulated();
        const size_t n = tuples.size();
        for (size_t i = 0; i < n; ++i) {
            if (native && i % kTuplesPerLine == 0 && i + kPrefetchAhead < n)
                __builtin_prefetch(&tuples[i + kPrefetchAhead], 0, 0);
            const Tuple &t = tuples[i];
            ctx.load(&t, sizeof(Tuple));
            ctx.instr(1); // loop increment
            fn(t);
        }
        // Degraded-mode tail: tuples that spilled past their bin's
        // planned capacity (never present on sane runs).
        if (store.hasOverflow()) [[unlikely]]
            store.forEachOverflowInBin(bin, fn);
        ctx.branch(branch_site::kAccumulateLoop, !tuples.empty());
    }

    uint64_t tuplesBinned() const { return store.totalTuples(); }

  private:
    void
    drainBuffer(ExecCtx &ctx, uint32_t b)
    {
        uint32_t n = counts[b];
        // Per-drain (amortized kTuplesPerBuffer times) checkpoint: a
        // cancelled Binning phase unwinds at its next drain.
        cancellationPoint();
        // Injection points on the (cold) drain path: a tuple of the
        // drained line can be corrupted, or the drain itself dropped,
        // replayed, or cut one tuple short — or the drain stalls /
        // runs slow (the resilience layer's adversary).
        if (auto *fi = FaultInjector::active(); fi) [[unlikely]] {
            if (fi->fire(FaultSite::kPbStallBinning, b))
                fi->stall();
            if (fi->fire(FaultSite::kPbDelayDrain, b))
                fi->delay();
            Tuple &t0 = src_(b)[0];
            if (fi->fire(FaultSite::kPbCorruptIndex, b))
                t0.index = fi->corruptIndex(t0.index);
            if (fi->fire(FaultSite::kPbCorruptPayload, b))
                fi->corruptBytes(reinterpret_cast<uint8_t *>(&t0) +
                                     sizeof(t0.index),
                                 sizeof(Tuple) - sizeof(t0.index));
            if (fi->fire(FaultSite::kPbDropDrain, b)) {
                counts[b] = 0;
                ctx.store(&counts[b], sizeof(uint32_t));
                return;
            }
            if (fi->fire(FaultSite::kPbDuplicateDrain, b)) {
                Tuple *extra = store.appendRaw(b, n);
                std::memcpy(extra, src_(b), n * sizeof(Tuple));
            }
            if (n > 1 && fi->fire(FaultSite::kPbTruncateDrain, b))
                --n;
        }
        Tuple *src = src_(b);
        Tuple *dst = store.appendRaw(b, n);
        // Native runs drain with real WC non-temporal stores; simulated
        // runs keep memcpy (the ntStore() report below models the NT
        // traffic) so counted results are unchanged.
        if (ctx.simulated())
            std::memcpy(dst, src, n * sizeof(Tuple));
        else
            streamCopy(dst, src, n * sizeof(Tuple));
        // Bulk transfer: cursor update + one WC non-temporal store of the
        // buffer line (the reason C-Buffers exist).
        ctx.instr(2);
        ctx.load(store.cursorAddr(b), 8);
        ctx.store(store.cursorAddr(b), 8);
        ctx.ntStore(dst, n * static_cast<uint32_t>(sizeof(Tuple)));
        counts[b] = 0;
        ctx.store(&counts[b], sizeof(uint32_t));
    }

    Tuple *
    src_(uint32_t b)
    {
        return &cbufs[static_cast<size_t>(b) * kTuplesPerBuffer];
    }

    // Page-aligned (not just line-aligned): both arrays are replayed
    // through ExecCtx, so their in-page layout must not depend on the
    // host allocator (see the hierarchy's address canonicalization).
    BinStorage<Payload> store;
    AlignedArray<Tuple, kPageSize> cbufs; ///< numBins line-sized C-Buffers
    AlignedArray<uint32_t, kPageSize> counts; ///< per-C-Buffer occupancy
};

} // namespace cobra

#endif // COBRA_PB_PB_BINNER_H
