/**
 * @file
 * Bin-range arithmetic.
 *
 * A binning plan partitions the index namespace [0, numIndices) into bins
 * of a power-of-two range so that mapping an index to its bin is a single
 * shift (paper Section V-A: "a cache level's bin range must be a power of
 * two, which makes binning a tuple cheap"). Given a desired bin count the
 * plan picks the smallest power-of-two range that needs at most that many
 * bins, then reports the bin count actually used.
 */

#ifndef COBRA_PB_BIN_RANGE_H
#define COBRA_PB_BIN_RANGE_H

#include <cstdint>
#include <string>

#include "src/util/bitops.h"
#include "src/util/error.h"

namespace cobra {

/**
 * Validate a user-supplied PB bin count (CLI --bins, config files).
 * Bin counts must be nonzero powers of two: the per-level bin range is
 * a power of two (paper Section V-A), so any other request silently
 * rounds — better to reject it at the boundary than to measure a
 * different configuration than the one asked for.
 */
inline Status
validatePbBinCount(uint32_t bins)
{
    if (bins == 0)
        return Status(ErrorCode::kInvalidArgument,
                      "bin count must be positive");
    if (!isPow2(static_cast<uint64_t>(bins)))
        return Status(ErrorCode::kInvalidArgument,
                      "bin count must be a power of two (got " +
                          std::to_string(bins) + ")");
    return Status::Ok();
}

/** A power-of-two partition of the index namespace. */
struct BinningPlan
{
    uint64_t numIndices = 0;
    uint32_t numBins = 0;    ///< bins actually used (== ceil(n / range))
    uint32_t rangeShift = 0; ///< bin range == 1 << rangeShift

    uint64_t binRange() const { return uint64_t{1} << rangeShift; }

    /** Bin of @p index (no bounds check beyond the plan's own clamp). */
    uint32_t
    binOf(uint32_t index) const
    {
        uint32_t b = index >> rangeShift;
        return b < numBins ? b : numBins - 1;
    }

    /** First index covered by @p bin. */
    uint64_t
    binStartIndex(uint32_t bin) const
    {
        return static_cast<uint64_t>(bin) << rangeShift;
    }

    /**
     * Plan with at most @p max_bins bins: the smallest power-of-two range
     * such that ceil(numIndices / range) <= max_bins.
     */
    static BinningPlan
    forMaxBins(uint64_t num_indices, uint32_t max_bins)
    {
        COBRA_FATAL_IF(num_indices == 0, "empty index namespace");
        COBRA_FATAL_IF(max_bins == 0, "need at least one bin");
        BinningPlan p;
        p.numIndices = num_indices;
        uint64_t range = ceilPow2(divCeil(num_indices, max_bins));
        p.rangeShift = floorLog2(range);
        p.numBins = static_cast<uint32_t>(divCeil(num_indices, range));
        return p;
    }
};

} // namespace cobra

#endif // COBRA_PB_BIN_RANGE_H
