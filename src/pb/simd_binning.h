/**
 * @file
 * Batch bin-index computation with runtime ISA dispatch.
 *
 * Binning a tuple is a shift plus a clamp (paper Section V-A's
 * power-of-two bin ranges make it so); the per-tuple cost the paper
 * complains about is the *surrounding* scalar loop. Computing the bin
 * indices of a whole batch at once amortizes that loop, lets a vector
 * unit do 8 shifts/clamps per instruction, and — just as importantly —
 * gives the engine all 8 target bins before any scatter happens, so it
 * can prefetch the C-Buffer lines and overlap their cache misses.
 *
 * The AVX2 implementation lives in its own translation unit
 * (simd_binning_avx2.cc), compiled with -mavx2 only under the
 * COBRA_NATIVE_ARCH build option; selection happens once at startup via
 * cpuHasAvx2, so a single binary is correct on any host and non-x86
 * builds use the scalar path with no further ifdefs.
 */

#ifndef COBRA_PB_SIMD_BINNING_H
#define COBRA_PB_SIMD_BINNING_H

#include <cstddef>
#include <cstdint>

namespace cobra {

/** Engine-side batch width (ragged tails 0..kBinBatch-1 are legal). */
inline constexpr size_t kBinBatch = 8;

/**
 * Compute bins_out[i] = min(indices[i] >> range_shift, num_bins - 1)
 * for i in [0, n). n may be any size (not just kBinBatch).
 */
using BinBatchFn = void (*)(const uint32_t *indices, size_t n,
                            uint32_t range_shift, uint32_t num_bins,
                            uint32_t *bins_out);

/** Portable reference implementation (always available). */
void binBatchScalar(const uint32_t *indices, size_t n,
                    uint32_t range_shift, uint32_t num_bins,
                    uint32_t *bins_out);

/**
 * AVX2 implementation; defined only in COBRA_NATIVE_ARCH builds (the
 * declaration is harmless elsewhere). Never call directly — it faults
 * on hosts without AVX2; go through activeBinBatchFn().
 */
void binBatchAvx2(const uint32_t *indices, size_t n, uint32_t range_shift,
                  uint32_t num_bins, uint32_t *bins_out);

/**
 * The implementation this host should use, chosen once at first call:
 * AVX2 iff it was compiled in (COBRA_NATIVE_ARCH) and the CPU reports
 * it, scalar otherwise.
 */
BinBatchFn activeBinBatchFn();

/** "avx2" or "scalar" — for bench labels and logs. */
const char *activeBinBatchName();

} // namespace cobra

#endif // COBRA_PB_SIMD_BINNING_H
