#include "src/pb/simd_binning.h"

#include "src/util/cpu_features.h"

namespace cobra {

void
binBatchScalar(const uint32_t *indices, size_t n, uint32_t range_shift,
               uint32_t num_bins, uint32_t *bins_out)
{
    const uint32_t cap = num_bins - 1;
    for (size_t i = 0; i < n; ++i) {
        uint32_t b = indices[i] >> range_shift;
        bins_out[i] = b < cap ? b : cap;
    }
}

BinBatchFn
activeBinBatchFn()
{
    static const BinBatchFn fn = [] {
#if defined(COBRA_NATIVE_ARCH)
        if (hostCpuFeatures().avx2)
            return &binBatchAvx2;
#endif
        return &binBatchScalar;
    }();
    return fn;
}

const char *
activeBinBatchName()
{
    return activeBinBatchFn() == &binBatchScalar ? "scalar" : "avx2";
}

} // namespace cobra
