/**
 * @file
 * Analytic bin-count selection for software PB.
 *
 * The paper selects the best bin range per workload/input by sweeping
 * (Section VI). Sweeping costs a full execution per candidate; this
 * helper encodes the mechanism behind the sweep's answer instead: the
 * Binning phase performs well while the C-Buffer working set (one 64B
 * buffer plus a 4B counter per bin) stays resident in the upper caches,
 * and Accumulate wants every bin it can get — so pick the largest
 * power-of-two bin count whose C-Buffer footprint fits a target capacity
 * (default: half the L2, leaving room for the streamed input).
 *
 * This is a heuristic, not an oracle: tests assert it lands within a
 * small factor of the swept optimum, not on it.
 */

#ifndef COBRA_PB_AUTO_TUNE_H
#define COBRA_PB_AUTO_TUNE_H

#include "src/mem/hierarchy.h"
#include "src/pb/bin_range.h"

namespace cobra {

/** Per-bin Binning-phase footprint: coalescing buffer + counter. */
constexpr uint64_t kPbBytesPerBin = kLineSize + sizeof(uint32_t);

/**
 * Suggest a PB bin count for @p num_indices on machine @p h.
 * @param capacity_fraction fraction of L2 to budget for C-Buffers.
 */
inline uint32_t
autoTunePbBins(uint64_t num_indices,
               const HierarchyConfig &h = HierarchyConfig{},
               double capacity_fraction = 0.5)
{
    COBRA_FATAL_IF(num_indices == 0, "empty index namespace");
    COBRA_FATAL_IF(capacity_fraction <= 0.0 || capacity_fraction > 1.0,
                   "capacity fraction must be in (0, 1]");
    const double budget =
        static_cast<double>(h.l2.sizeBytes) * capacity_fraction;
    uint64_t bins = static_cast<uint64_t>(budget / kPbBytesPerBin);
    bins = std::max<uint64_t>(16, floorPow2(std::max<uint64_t>(1, bins)));
    // Never more bins than indices (the plan would clamp anyway).
    bins = std::min<uint64_t>(bins, ceilPow2(num_indices));
    return static_cast<uint32_t>(bins);
}

/** The binning plan the heuristic implies. */
inline BinningPlan
autoTunePlan(uint64_t num_indices,
             const HierarchyConfig &h = HierarchyConfig{})
{
    return BinningPlan::forMaxBins(num_indices,
                                   autoTunePbBins(num_indices, h));
}

} // namespace cobra

#endif // COBRA_PB_AUTO_TUNE_H
