/**
 * @file
 * Analytic bin-count selection for software PB.
 *
 * The paper selects the best bin range per workload/input by sweeping
 * (Section VI). Sweeping costs a full execution per candidate; this
 * helper encodes the mechanism behind the sweep's answer instead: the
 * Binning phase performs well while the C-Buffer working set (one 64B
 * buffer plus a 4B counter per bin) stays resident in the upper caches,
 * and Accumulate wants every bin it can get — so pick the largest
 * power-of-two bin count whose C-Buffer footprint fits a target capacity
 * (default: half the L2, leaving room for the streamed input).
 *
 * This is a heuristic, not an oracle: tests assert it lands within a
 * small factor of the swept optimum, not on it.
 */

#ifndef COBRA_PB_AUTO_TUNE_H
#define COBRA_PB_AUTO_TUNE_H

#include <algorithm>

#include "src/mem/hierarchy.h"
#include "src/pb/bin_range.h"
#include "src/pb/engine_config.h"
#include "src/util/cpu_features.h"

namespace cobra {

/** Per-bin Binning-phase footprint: coalescing buffer + counter. */
constexpr uint64_t kPbBytesPerBin = kLineSize + sizeof(uint32_t);

/**
 * Suggest a PB bin count for @p num_indices on machine @p h.
 * @param capacity_fraction fraction of L2 to budget for C-Buffers.
 */
inline uint32_t
autoTunePbBins(uint64_t num_indices,
               const HierarchyConfig &h = HierarchyConfig{},
               double capacity_fraction = 0.5)
{
    COBRA_FATAL_IF(num_indices == 0, "empty index namespace");
    COBRA_FATAL_IF(capacity_fraction <= 0.0 || capacity_fraction > 1.0,
                   "capacity fraction must be in (0, 1]");
    const double budget =
        static_cast<double>(h.l2.sizeBytes) * capacity_fraction;
    uint64_t bins = static_cast<uint64_t>(budget / kPbBytesPerBin);
    bins = std::max<uint64_t>(16, floorPow2(std::max<uint64_t>(1, bins)));
    // Never more bins than indices (the plan would clamp anyway).
    bins = std::min<uint64_t>(bins, ceilPow2(num_indices));
    return static_cast<uint32_t>(bins);
}

/** The binning plan the heuristic implies. */
inline BinningPlan
autoTunePlan(uint64_t num_indices,
             const HierarchyConfig &h = HierarchyConfig{})
{
    return BinningPlan::forMaxBins(num_indices,
                                   autoTunePbBins(num_indices, h));
}

/**
 * Cache capacities the *native* engines should tune against: the host's
 * real topology when sysfs exposes it, the benchmark-context
 * HierarchyConfig otherwise (containers and stripped sysfs roots fall
 * back to the same machine model the simulator uses, so tuning is
 * deterministic either way).
 */
struct CacheBudget
{
    uint64_t l1dBytes = 0;
    uint64_t l2Bytes = 0;
    uint64_t llcBytes = 0;
    bool fromHost = false; ///< true: sysfs; false: HierarchyConfig
};

inline CacheBudget
hostCacheBudget(const HierarchyConfig &fallback = HierarchyConfig{})
{
    const HostCacheGeometry &g = hostCacheGeometry();
    if (g.detected)
        return CacheBudget{g.l1dBytes, g.l2Bytes, g.llcBytes, true};
    return CacheBudget{fallback.l1.sizeBytes, fallback.l2.sizeBytes,
                       fallback.llc.sizeBytes, false};
}

/** A fully tuned native Binning configuration. */
struct PbEnginePlan
{
    BinningPlan plan;
    PbEngineConfig engine;
    CacheBudget budget; ///< capacities the choice was made against
};

/**
 * Pick engine kind, WC depth, level count, and per-level bin counts for
 * a native run over @p num_indices — the software analogue of COBRA's
 * per-cache-level provisioning (reserved ways sized per level, paper
 * Section V-B):
 *
 *  - Desired *final* bin count comes from the Accumulate side: the bin
 *    range should cover at most ~half the L1d of indexed data (4B per
 *    element assumed — payload-independent, like the paper's sweeps),
 *    clamped below by the flat heuristic's floor of 16. Callers that
 *    already swept (or a CLI --bins override) pass @p requested_bins.
 *  - If one flat level of C-Buffers at that bin count fits in half the
 *    L2, use the flat WC engine (+ SIMD batch binning) and spend any
 *    leftover budget on WC depth — deeper staging halves drain
 *    frequency.
 *  - Otherwise go hierarchical: children-per-coarse-bin sized so the
 *    refine pass's C-Buffer set sits in half the L1d, then widened until
 *    the coarse level's own WC working set fits the L2 budget.
 *  - Past even the LLC: when one flat level of C-Buffers at the final
 *    bin count would overflow half the *last-level* cache, no single-
 *    movement engine keeps its working set resident anywhere — fall
 *    back to the two-pass radix partitioner (kTwoPass), whose per-pass
 *    buffer sets are tiny by construction at the cost of moving every
 *    tuple twice (partitioning literature [54], [65]).
 *
 * The CacheBudget overload makes the decision rules unit-testable
 * against synthetic geometries; the convenience overload probes the
 * host (sysfs, HierarchyConfig fallback) and delegates.
 */
inline PbEnginePlan
autoTunePbEngine(uint64_t num_indices, uint32_t requested_bins,
                 const CacheBudget &cb)
{
    COBRA_FATAL_IF(num_indices == 0, "empty index namespace");

    uint32_t want_bins;
    if (requested_bins != 0) {
        want_bins = requested_bins;
    } else {
        const uint64_t target_range =
            std::max<uint64_t>(16, cb.l1dBytes / 2 / sizeof(uint32_t));
        uint64_t bins = ceilPow2(divCeil(num_indices, target_range));
        bins = std::clamp<uint64_t>(bins, 16, uint64_t{1} << 20);
        bins = std::min<uint64_t>(bins, ceilPow2(num_indices));
        want_bins = static_cast<uint32_t>(bins);
    }

    PbEnginePlan out;
    out.plan = BinningPlan::forMaxBins(num_indices, want_bins);
    out.budget = cb;

    const uint64_t flat_budget = cb.l2Bytes / 2;
    const uint64_t llc_budget = std::max(cb.llcBytes / 2, flat_budget);
    const uint64_t nb = out.plan.numBins;
    if (nb * kPbBytesPerBin <= flat_budget) {
        out.engine.kind = PbEngineKind::kWriteCombineSimd;
        while (out.engine.wcLines < 4 &&
               nb * (2 * out.engine.wcLines * kLineSize +
                     sizeof(uint32_t)) <=
                   flat_budget)
            out.engine.wcLines *= 2;
    } else if (nb * kPbBytesPerBin <= llc_budget) {
        out.engine.kind = PbEngineKind::kHierarchical;
        // log2(children per coarse bin): refine C-Buffers in half-L1d...
        uint32_t k = floorLog2(
            std::max<uint64_t>(2, cb.l1dBytes / 2 / kLineSize));
        // ...widened until the coarse WC working set fits the L2 budget.
        while (k < 31 &&
               divCeil(nb, uint64_t{1} << k) * kPbBytesPerBin >
                   flat_budget)
            ++k;
        out.engine.coarseBins =
            static_cast<uint32_t>(divCeil(nb, uint64_t{1} << k));
    } else {
        // Fan-out past the LLC: two-pass radix. Coarse fan-out = the
        // largest power of two whose buffer set is L2-resident, so pass
        // 1 behaves like the flat WC case; pass 2 then refines one
        // coarse bin's fine set at a time (cache-resident by locality).
        out.engine.kind = PbEngineKind::kTwoPass;
        uint64_t coarse = floorPow2(
            std::max<uint64_t>(16, flat_budget / kPbBytesPerBin));
        coarse = std::clamp<uint64_t>(coarse, 16, nb);
        out.engine.coarseBins = static_cast<uint32_t>(coarse);
    }
    return out;
}

inline PbEnginePlan
autoTunePbEngine(uint64_t num_indices, uint32_t requested_bins = 0,
                 const HierarchyConfig &fallback = HierarchyConfig{})
{
    return autoTunePbEngine(num_indices, requested_bins,
                            hostCacheBudget(fallback));
}

/**
 * Direction heuristic for PbDirection::kAuto (the pull/push trade from
 * "Specializing Coherence, Consistency, and Push/Pull for GPU Graph
 * Analytics", PAPERS.md): pull-mode Accumulate skips Init+Binning
 * entirely, but its gather reads hit the destination array at random —
 * it only wins when that working set is cache-resident and the stream
 * is dense enough that the per-destination gather walk amortizes.
 *
 *  - LLC residency: destination array (4B/element, payload-independent
 *    like autoTunePbEngine) within half the LLC, leaving room for the
 *    streamed source view.
 *  - Density: >= 4 updates per destination on average. Below that the
 *    gather walk touches more source-view cachelines per useful update
 *    than binning would move, so push keeps its bandwidth advantage.
 *  - Skew: when the caller knows the heavy-hitter mass (SkewSketch
 *    from a previous attempt, or generator stats), a stream whose top
 *    bins absorb most updates favors push — binning concentrates the
 *    hot destinations into cache-resident bins anyway, and pull's
 *    per-destination sharding load-balances poorly under power laws.
 *
 * Explicit push/pull requests pass through untouched.
 */
inline PbDirection
resolvePbDirection(PbDirection requested, uint64_t num_updates,
                   uint64_t num_indices, const CacheBudget &cb,
                   double skew_hot_fraction = 0.0)
{
    if (requested != PbDirection::kAuto)
        return requested;
    if (num_indices == 0 || num_updates == 0)
        return PbDirection::kPush;
    const uint64_t dest_bytes = num_indices * sizeof(uint32_t);
    const bool llc_resident = dest_bytes <= cb.llcBytes / 2;
    const bool dense = num_updates >= 4 * num_indices;
    const bool skewed = skew_hot_fraction > 0.5;
    return (llc_resident && dense && !skewed) ? PbDirection::kPull
                                              : PbDirection::kPush;
}

inline PbDirection
resolvePbDirection(PbDirection requested, uint64_t num_updates,
                   uint64_t num_indices)
{
    return resolvePbDirection(requested, num_updates, num_indices,
                              hostCacheBudget());
}

} // namespace cobra

#endif // COBRA_PB_AUTO_TUNE_H
