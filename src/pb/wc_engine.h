/**
 * @file
 * Software C-Buffers: native write-combining / SIMD / hierarchical
 * Binning engines for the host-parallel PB runtime.
 *
 * COBRA removes two software-PB costs in hardware (paper Sections III-C,
 * IV): the per-tuple instruction/branch overhead of C-Buffer
 * bookkeeping, and the bin-count compromise (few big bins starve
 * Accumulate locality; many small bins thrash the Binning working set).
 * These engines are the closest software can get to each mechanism:
 *
 *  - WcBinner ("wc"): one 64B-aligned staging line per bin (wcLines
 *    deep), drained only as full aligned non-temporal bursts
 *    (streamLine64) into line-aligned bins — the software analogue of a
 *    C-Buffer evicting a complete line. Partial lines exist only at the
 *    end-of-phase flush.
 *
 *  - WcBinner ("wc-simd"): additionally gathers tuples into a batch of
 *    8, computes all 8 bin indices at once (AVX2 via runtime dispatch,
 *    portable scalar otherwise — src/pb/simd_binning.h), and prefetches
 *    the 8 target staging lines before scattering, overlapping the
 *    cache misses that dominate large-bin-count Binning.
 *
 *  - HierarchicalBinner ("hier"): two power-of-two bin levels (paper
 *    Section V-A): a coarse partition whose WC working set stays
 *    upper-cache-resident, then a streaming in-cache refine of each
 *    coarse run into the final bins. This escapes the bin-count
 *    compromise for index spaces where a flat binner would need more
 *    C-Buffers than the caches can hold.
 *
 * All engines preserve intra-bin tuple order (the paper's generality
 * claim: non-commutative kernels like Neighbor-Populate must see bins
 * as order-preserving queues), produce bit-identical per-bin sequences
 * to the flat scalar PbBinner (tests/test_wc_binning.cc pins this), and
 * thread the same FaultInjector drain sites so the differential oracle
 * and conservation checks of PR 2 cover the new hot path.
 *
 * These classes are native-only: they accept an ExecCtx purely for
 * interface compatibility with PbBinner and never report through it —
 * the simulated pipeline keeps using PbBinner, whose counted costs are
 * the paper's software-PB baseline.
 */

#ifndef COBRA_PB_WC_ENGINE_H
#define COBRA_PB_WC_ENGINE_H

#include <algorithm>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pb/bin_storage.h"
#include "src/pb/engine_config.h"
#include "src/pb/simd_binning.h"
#include "src/util/aligned_array.h"
#include "src/util/stream_copy.h"

namespace cobra {

namespace wc_detail {

/**
 * Stream @p n tuples from a staging buffer to @p dst: full-line aligned
 * NT bursts when geometry allows, streamCopy otherwise (ragged flush
 * tails, or cursors knocked off alignment by an injected fault).
 */
template <typename Tuple>
inline void
streamTuples(Tuple *dst, const Tuple *src, uint32_t n)
{
    const size_t bytes = static_cast<size_t>(n) * sizeof(Tuple);
    if (bytes % kLineSize == 0 &&
        (reinterpret_cast<uintptr_t>(dst) & (kLineSize - 1)) == 0) {
        auto *d = reinterpret_cast<unsigned char *>(dst);
        auto *s = reinterpret_cast<const unsigned char *>(src);
        for (size_t off = 0; off < bytes; off += kLineSize)
            streamLine64(d + off, s + off);
    } else {
        streamCopy(dst, src, bytes);
    }
}

/**
 * The PbBinner drain-path injection sites, verbatim, so PR 2's mutation
 * matrix covers the WC engines too. Returns the (possibly truncated)
 * tuple count to actually drain; ~0u means the drain was dropped.
 */
template <typename Tuple, typename Payload>
inline uint32_t
injectDrainFaults(BinStorage<Payload> &store, uint32_t b, Tuple *src,
                  uint32_t n)
{
    // Per-drain cancellation checkpoint, shared by the WC and
    // hierarchical final-drain paths (same cold-path discipline as the
    // fault hooks themselves).
    cancellationPoint();
    if (auto *fi = FaultInjector::active(); fi) [[unlikely]] {
        if (fi->fire(FaultSite::kPbStallBinning, b))
            fi->stall();
        if (fi->fire(FaultSite::kPbDelayDrain, b))
            fi->delay();
        Tuple &t0 = src[0];
        if (fi->fire(FaultSite::kPbCorruptIndex, b))
            t0.index = fi->corruptIndex(t0.index);
        if (fi->fire(FaultSite::kPbCorruptPayload, b))
            fi->corruptBytes(reinterpret_cast<uint8_t *>(&t0) +
                                 sizeof(t0.index),
                             sizeof(Tuple) - sizeof(t0.index));
        if (fi->fire(FaultSite::kPbDropDrain, b))
            return ~0u;
        if (fi->fire(FaultSite::kPbDuplicateDrain, b)) {
            Tuple *extra = store.appendRaw(b, n);
            std::memcpy(extra, src, n * sizeof(Tuple));
        }
        if (n > 1 && fi->fire(FaultSite::kPbTruncateDrain, b))
            --n;
    }
    return n;
}

/** Accumulate-phase streaming, shared by both native engines. */
template <typename Payload, typename Fn>
inline void
forEachInBinNative(const BinStorage<Payload> &store, uint32_t bin,
                   Fn &&fn)
{
    using Tuple = BinTuple<Payload>;
    // Per-bin cancellation checkpoint + stall site (cold relative to
    // the tuple stream below).
    cancellationPoint();
    if (auto *fi = FaultInjector::active(); fi) [[unlikely]]
        if (fi->fire(FaultSite::kPbStallAccumulate, bin))
            fi->stall();
    auto tuples = store.bin(bin);
    constexpr size_t kTuplesPerLine = kLineSize / sizeof(Tuple);
    constexpr size_t kPrefetchAhead = 4 * kTuplesPerLine;
    const size_t n = tuples.size();
    for (size_t i = 0; i < n; ++i) {
        if (i % kTuplesPerLine == 0 && i + kPrefetchAhead < n)
            __builtin_prefetch(&tuples[i + kPrefetchAhead], 0, 0);
        fn(tuples[i]);
    }
    if (store.hasOverflow()) [[unlikely]]
        store.forEachOverflowInBin(bin, fn);
}

/**
 * Publish one shard's drain-burst tallies at flush time (cold path —
 * once per Binning phase per thread). Hot drain loops only bump plain
 * local members; nothing else runs when observability is disabled.
 */
inline void
reportDrains(const char *engine, uint64_t bursts, uint64_t tuples)
{
    if (MetricsRegistry *reg = MetricsRegistry::active()) {
        reg->counter(std::string("pb.") + engine + ".drain_bursts")
            ->add(bursts);
        reg->counter(std::string("pb.") + engine + ".drain_tuples")
            ->add(tuples);
    }
    if (TraceSession *ts = TraceSession::active())
        ts->instant(std::string(engine) + ".drain", "pb",
                    {{"bursts", bursts}, {"tuples", tuples}});
}

} // namespace wc_detail

/**
 * Flat write-combining binner (engine kinds kWriteCombine and
 * kWriteCombineSimd). Drop-in replacement for PbBinner inside
 * ParallelPbRunner — same phase methods, same BinStorage conservation
 * accounting — minus the per-tuple ExecCtx bookkeeping.
 */
template <typename Payload>
class WcBinner
{
  public:
    using Tuple = BinTuple<Payload>;
    static constexpr uint32_t kTuplesPerLine =
        kLineSize / static_cast<uint32_t>(sizeof(Tuple));

    WcBinner(const BinningPlan &plan, const PbEngineConfig &cfg)
        : store(plan, /*align_bins=*/true),
          bufTuples(cfg.wcLines * kTuplesPerLine),
          batch(cfg.kind == PbEngineKind::kWriteCombineSimd),
          batchFn(cfg.forceScalarBatch ? &binBatchScalar
                                       : activeBinBatchFn()),
          bufs(alignedAlloc<Tuple>(static_cast<size_t>(plan.numBins) *
                                   bufTuples)),
          counts(plan.numBins)
    {
        COBRA_FATAL_IF(cfg.wcLines == 0 || cfg.wcLines > 8,
                       "WC depth must be 1..8 staging lines");
    }

    BinStorage<Payload> &storage() { return store; }
    const BinningPlan &plan() const { return store.binningPlan(); }
    uint32_t numBins() const { return store.numBins(); }
    uint64_t tuplesBinned() const { return store.totalTuples(); }

    /** Bytes of staging + counter state (the Binning working set). */
    uint64_t
    cbufFootprintBytes() const
    {
        return static_cast<uint64_t>(numBins()) *
            (static_cast<uint64_t>(bufTuples) * sizeof(Tuple) +
             sizeof(uint32_t));
    }

    void initCount(ExecCtx &ctx, uint32_t index)
    {
        store.countInsert(ctx, index);
    }

    void finalizeInit(ExecCtx &ctx) { store.finalizeInit(ctx); }

    void
    insert(ExecCtx &, uint32_t index, const Payload &payload)
    {
        if (batch) {
            pendingIdx[pendingN] = index;
            pendingTup[pendingN] = makeTuple<Payload>(index, payload);
            if (++pendingN == kBinBatch)
                drainBatch();
            return;
        }
        insertOne(plan().binOf(index), makeTuple<Payload>(index, payload));
    }

    void
    flush(ExecCtx &)
    {
        if (batch && pendingN != 0)
            drainBatch(); // ragged tail (< kBinBatch tuples)
        for (uint32_t b = 0; b < numBins(); ++b)
            if (counts[b] != 0)
                drain(b, counts[b]);
        streamFence(); // NT drains precede the Binning/Accumulate barrier
        wc_detail::reportDrains("wc", drainBursts, tuplesBinned());
    }

    template <typename Fn>
    void
    forEachInBin(ExecCtx &, uint32_t bin, Fn &&fn)
    {
        wc_detail::forEachInBinNative(store, bin, fn);
    }

  private:
    void
    insertOne(uint32_t b, const Tuple &t)
    {
        uint32_t &cnt = counts[b];
        Tuple *buf = bufs.get() + static_cast<size_t>(b) * bufTuples;
        buf[cnt] = t;
        if (++cnt == bufTuples)
            drain(b, bufTuples);
    }

    /**
     * Scatter the pending batch: all bin indices first (one vector op
     * under AVX2), then prefetch every target staging line, then store —
     * the misses of up to kBinBatch staging lines overlap instead of
     * serializing through one scalar dependence chain.
     */
    void
    drainBatch()
    {
        uint32_t bins[kBinBatch];
        batchFn(pendingIdx, pendingN, plan().rangeShift, numBins(), bins);
        for (uint32_t i = 0; i < pendingN; ++i)
            __builtin_prefetch(
                bufs.get() + static_cast<size_t>(bins[i]) * bufTuples, 1,
                3);
        for (uint32_t i = 0; i < pendingN; ++i)
            insertOne(bins[i], pendingTup[i]);
        pendingN = 0;
    }

    void
    drain(uint32_t b, uint32_t n)
    {
        ++drainBursts;
        Tuple *src = bufs.get() + static_cast<size_t>(b) * bufTuples;
        n = wc_detail::injectDrainFaults(store, b, src, n);
        if (n == ~0u) [[unlikely]] { // injected drop
            counts[b] = 0;
            return;
        }
        Tuple *dst = store.appendRaw(b, n);
        wc_detail::streamTuples(dst, src, n);
        counts[b] = 0;
    }

    BinStorage<Payload> store;
    const uint32_t bufTuples; ///< staging tuples per bin (wcLines deep)
    const bool batch;         ///< kWriteCombineSimd: batch + prefetch
    const BinBatchFn batchFn;
    AlignedBuffer<Tuple> bufs;         ///< numBins aligned staging buffers
    AlignedArray<uint32_t, kPageSize> counts; ///< staging occupancy
    uint64_t drainBursts = 0; ///< NT drain bursts (reported at flush)
    uint32_t pendingN = 0;
    uint32_t pendingIdx[kBinBatch];
    Tuple pendingTup[kBinBatch];
};

/**
 * Two-level hierarchical binner (engine kind kHierarchical).
 *
 * Level 1 scatters the update stream into coarse bins (each covering
 * 2^k final bins) through WC staging lines — with few coarse bins the
 * staging working set stays upper-cache-resident no matter how large
 * the final bin count is. flush() then refines each coarse run in
 * order: tuples stream back sequentially (prefetcher-friendly) and
 * scatter through a tiny per-coarse-bin set of child C-Buffers into the
 * final line-aligned bins. Both passes preserve arrival order, so final
 * bins are byte-identical to flat binning.
 *
 * The refine (second) pass is charged to the Binning phase — exactly
 * the extra binning work the paper's hierarchy trades for Accumulate
 * locality, so the per-phase benchmark counters expose the tradeoff.
 *
 * Fault-injection sites live on the final-level drain path (the one
 * that feeds Accumulate), keeping opportunity semantics comparable to
 * the flat engines.
 */
template <typename Payload>
class HierarchicalBinner
{
  public:
    using Tuple = BinTuple<Payload>;
    static constexpr uint32_t kTuplesPerLine =
        kLineSize / static_cast<uint32_t>(sizeof(Tuple));

    HierarchicalBinner(const BinningPlan &plan, const PbEngineConfig &cfg)
        : store(plan, /*align_bins=*/true),
          bufTuples(cfg.wcLines * kTuplesPerLine),
          batchFn(cfg.forceScalarBatch ? &binBatchScalar
                                       : activeBinBatchFn())
    {
        COBRA_FATAL_IF(cfg.wcLines == 0 || cfg.wcLines > 8,
                       "WC depth must be 1..8 staging lines");
        const uint32_t nb = plan.numBins;
        if (nb <= 1) {
            childShift = 0;
        } else if (cfg.coarseBins == 0) {
            // Balanced split: ~sqrt(numBins) coarse bins, sqrt children.
            childShift = std::max<uint32_t>(1, ceilLog2(nb) / 2);
        } else {
            uint32_t target =
                std::min<uint32_t>(std::max<uint32_t>(cfg.coarseBins, 1),
                                   nb);
            childShift = std::max<uint32_t>(
                1, ceilLog2(ceilPow2(divCeil(nb, target))));
        }
        coarseBins =
            static_cast<uint32_t>(divCeil(nb, uint64_t{1} << childShift));
        coarseShiftTotal = plan.rangeShift + childShift;

        coarseBufs = alignedAlloc<Tuple>(
            static_cast<size_t>(coarseBins) * bufTuples);
        coarseBufCnt =
            AlignedArray<uint32_t, kPageSize>(coarseBins);
        childBufs = alignedAlloc<Tuple>(
            (size_t{1} << childShift) * kTuplesPerLine);
        childCnt.assign(size_t{1} << childShift, 0);
    }

    BinStorage<Payload> &storage() { return store; }
    const BinningPlan &plan() const { return store.binningPlan(); }
    uint32_t numBins() const { return store.numBins(); }
    uint64_t tuplesBinned() const { return store.totalTuples(); }

    /** Level-1 (coarse) bin count actually used. */
    uint32_t numCoarseBins() const { return coarseBins; }
    /** Final bins per coarse bin == 1 << childShift (last may be short). */
    uint32_t childrenPerCoarse() const { return 1u << childShift; }

    void initCount(ExecCtx &ctx, uint32_t index)
    {
        store.countInsert(ctx, index);
    }

    void
    finalizeInit(ExecCtx &ctx)
    {
        store.finalizeInit(ctx);
        // Coarse layout falls out of the final counts (one Init pass
        // feeds both levels): coarseCount[c] = sum of its children.
        const uint32_t *fc = store.initCounts();
        const uint32_t nb = numBins();
        coarseStarts.assign(static_cast<size_t>(coarseBins) + 1, 0);
        coarseCursors.assign(coarseBins, 0);
        uint64_t run = 0;
        for (uint32_t c = 0; c < coarseBins; ++c) {
            run = divCeil(run, kTuplesPerLine) * kTuplesPerLine;
            coarseStarts[c] = coarseCursors[c] = run;
            const uint32_t first = c << childShift;
            const uint32_t last = std::min(nb, first + (1u << childShift));
            for (uint32_t b = first; b < last; ++b)
                run += fc[b];
        }
        coarseStarts[coarseBins] = run;
        coarseData = alignedAlloc<Tuple>(run);
    }

    /**
     * Level-1 insert: batch bin computation against the *coarse* shift,
     * then WC-scatter into the coarse runs.
     */
    void
    insert(ExecCtx &, uint32_t index, const Payload &payload)
    {
        pendingIdx[pendingN] = index;
        pendingTup[pendingN] = makeTuple<Payload>(index, payload);
        if (++pendingN == kBinBatch)
            drainBatch();
    }

    void
    flush(ExecCtx &)
    {
        if (pendingN != 0)
            drainBatch();
        for (uint32_t c = 0; c < coarseBins; ++c)
            if (coarseBufCnt[c] != 0)
                coarseDrain(c, coarseBufCnt[c]);
        // Our own refine reads the coarse runs back: order the weakly-
        // ordered NT stores before the loads.
        streamFence();
        refine();
        streamFence(); // final drains precede the phase barrier
        // Every tuple crosses both levels, so each pass drained the
        // full shard's tuple count.
        wc_detail::reportDrains("hier.coarse", coarseDrains,
                                tuplesBinned());
        wc_detail::reportDrains("hier.final", finalDrains,
                                tuplesBinned());
    }

    template <typename Fn>
    void
    forEachInBin(ExecCtx &, uint32_t bin, Fn &&fn)
    {
        wc_detail::forEachInBinNative(store, bin, fn);
    }

  private:
    void
    drainBatch()
    {
        uint32_t bins[kBinBatch];
        // min(index >> coarseShiftTotal, coarseBins-1): the coarse level
        // is just another power-of-two binning plan.
        batchFn(pendingIdx, pendingN, coarseShiftTotal, coarseBins, bins);
        for (uint32_t i = 0; i < pendingN; ++i)
            __builtin_prefetch(coarseBufs.get() +
                                   static_cast<size_t>(bins[i]) *
                                       bufTuples,
                               1, 3);
        for (uint32_t i = 0; i < pendingN; ++i) {
            const uint32_t c = bins[i];
            uint32_t &cnt = coarseBufCnt[c];
            Tuple *buf =
                coarseBufs.get() + static_cast<size_t>(c) * bufTuples;
            buf[cnt] = pendingTup[i];
            if (++cnt == bufTuples)
                coarseDrain(c, bufTuples);
        }
        pendingN = 0;
    }

    void
    coarseDrain(uint32_t c, uint32_t n)
    {
        ++coarseDrains;
        const uint64_t pos = coarseCursors[c];
        COBRA_PANIC_IF(pos + n > coarseStarts[c + 1],
                       "coarse bin " << c << " overflow (Init undercount)");
        wc_detail::streamTuples(coarseData.get() + pos,
                                coarseBufs.get() +
                                    static_cast<size_t>(c) * bufTuples,
                                n);
        coarseCursors[c] = pos + n;
        coarseBufCnt[c] = 0;
    }

    void
    refine()
    {
        constexpr size_t kPrefetchAhead = 4 * kTuplesPerLine;
        const uint32_t nb = numBins();
        for (uint32_t c = 0; c < coarseBins; ++c) {
            const uint32_t firstChild = c << childShift;
            const uint32_t nchild =
                std::min(1u << childShift, nb - firstChild);
            std::fill_n(childCnt.begin(), nchild, 0u);
            const Tuple *src = coarseData.get() + coarseStarts[c];
            const size_t n = coarseCursors[c] - coarseStarts[c];
            for (size_t i = 0; i < n; ++i) {
                if (i % kTuplesPerLine == 0 && i + kPrefetchAhead < n)
                    __builtin_prefetch(src + i + kPrefetchAhead, 0, 0);
                const Tuple t = src[i];
                const uint32_t local =
                    plan().binOf(t.index) - firstChild;
                COBRA_PANIC_IF(local >= nchild,
                               "refine: tuple escaped its coarse bin");
                uint32_t &cnt = childCnt[local];
                Tuple *buf = childBufs.get() +
                    static_cast<size_t>(local) * kTuplesPerLine;
                buf[cnt] = t;
                if (++cnt == kTuplesPerLine)
                    finalDrain(firstChild + local, local, kTuplesPerLine);
            }
            for (uint32_t local = 0; local < nchild; ++local)
                if (childCnt[local] != 0)
                    finalDrain(firstChild + local, local, childCnt[local]);
        }
    }

    void
    finalDrain(uint32_t b, uint32_t local, uint32_t n)
    {
        ++finalDrains;
        Tuple *src =
            childBufs.get() + static_cast<size_t>(local) * kTuplesPerLine;
        n = wc_detail::injectDrainFaults(store, b, src, n);
        if (n == ~0u) [[unlikely]] { // injected drop
            childCnt[local] = 0;
            return;
        }
        Tuple *dst = store.appendRaw(b, n);
        wc_detail::streamTuples(dst, src, n);
        childCnt[local] = 0;
    }

    BinStorage<Payload> store; ///< final (level-2) bins, line-aligned
    const uint32_t bufTuples;  ///< coarse staging depth per bin
    const BinBatchFn batchFn;
    uint32_t childShift = 0;       ///< log2(final bins per coarse bin)
    uint32_t coarseBins = 0;       ///< level-1 bin count
    uint32_t coarseShiftTotal = 0; ///< index -> coarse bin shift

    // Level-1 runs: line-aligned starts so coarse drains burst too.
    std::vector<uint64_t> coarseStarts; ///< coarseBins + 1 (padded)
    std::vector<uint64_t> coarseCursors;
    AlignedBuffer<Tuple> coarseData;

    AlignedBuffer<Tuple> coarseBufs; ///< coarse WC staging lines
    AlignedArray<uint32_t, kPageSize> coarseBufCnt;
    AlignedBuffer<Tuple> childBufs; ///< refine C-Buffers (one line each)
    std::vector<uint32_t> childCnt;

    uint64_t coarseDrains = 0; ///< level-1 drain bursts
    uint64_t finalDrains = 0;  ///< final-level drain bursts

    uint32_t pendingN = 0;
    uint32_t pendingIdx[kBinBatch];
    Tuple pendingTup[kBinBatch];
};

} // namespace cobra

#endif // COBRA_PB_WC_ENGINE_H
