/**
 * @file
 * Native host-parallel software PB runtime (paper Algorithm 2, Section
 * III-A — the real-machine half of the methodology).
 *
 * Parallel PB needs no synchronization inside either hot phase:
 *
 *  - Binning: the update stream is sharded contiguously, one shard per
 *    pool thread, and every thread owns a private binner (bins +
 *    C-Buffers), so threads never write shared state. C-Buffer drains use
 *    real non-temporal stores (see stream_copy.h) followed by one fence
 *    at the phase barrier.
 *  - Accumulate: bins are partitioned contiguously across threads. A bin
 *    covers a disjoint index range, so the thread that owns bin b applies
 *    tuples from *every* thread's copy of bin b without racing any other
 *    thread — the apply callback may freely mutate the indexed data.
 *
 * The Binning engine is selectable per run (PbEngineConfig): the
 * instruction-faithful scalar PbBinner (also the simulator's model),
 * one of the software C-Buffer engines of wc_engine.h (write-combining,
 * write-combining + SIMD batch binning, two-level hierarchical), or the
 * two-pass radix partitioner (two_pass_binner.h) for fan-outs past the
 * LLC budget. All engines produce identical per-bin tuple sequences, so
 * kernels and the differential oracle are engine-agnostic.
 *
 * Skew adaptation (PbEngineConfig::skewAdaptive): the static contiguous
 * Accumulate split is optimal for even bin occupancy but its finish
 * line is the fattest range under power-law streams. The adaptive
 * scheduler measures occupancy at the Init barrier (SkewSketch — free,
 * Init already counted every tuple), builds occupancy-balanced bin
 * chunks plus privatized sub-range splits of the hottest bins, and
 * drains them through a work-stealing queue (steal_queue.h).
 * Determinism contract: which worker runs an item is schedule-
 * dependent, but items are disjoint bins (any kernel) or fixed-count
 * sub-ranges merged in fixed order (commutative kernels only), so
 * results are bit-identical for every host thread count.
 *
 * The phase barrier between Binning and Accumulate is the pool's wait();
 * the PhaseRecorder brackets give the same Init/Binning/Accumulate
 * structure as the sequential pipeline (runPbPipeline), so Table-I-style
 * phase breakdowns work for threaded runs too.
 */

#ifndef COBRA_PB_PARALLEL_PB_H
#define COBRA_PB_PARALLEL_PB_H

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pb/engine_config.h"
#include "src/pb/pb_binner.h"
#include "src/pb/skew_sketch.h"
#include "src/pb/steal_queue.h"
#include "src/pb/two_pass_binner.h"
#include "src/pb/wc_engine.h"
#include "src/resilience/cancel.h"
#include "src/sim/phase_recorder.h"
#include "src/util/thread_pool.h"

namespace cobra {

/**
 * Runs the three PB phases for one kernel execution on a ThreadPool.
 *
 * The caller describes its update stream positionally:
 *   index_of(i)  -> uint32_t                     (Init counting pass)
 *   update_of(i) -> std::pair<uint32_t, Payload> (Binning pass)
 *   apply(tuple)                                 (Accumulate pass)
 * apply() runs concurrently on different threads but only ever for
 * disjoint bins (disjoint index ranges); index_of/update_of must be
 * safe to call concurrently for disjoint i (pure reads qualify).
 *
 * Commutative kernels may additionally pass privatized-reduction ops
 * (the run<Slot>(...) overload), enabling hot-bin splitting under
 * skewAdaptive:
 *   apply_priv(tuple, slot)  accumulate one tuple into a private Slot
 *                            (slot belongs to tuple.index; Slot must
 *                            value-initialize to the reduction identity)
 *   merge(index, slot)       fold one private Slot into the real data;
 *                            called exactly hotSubRanges times per index
 *                            of a split bin, in fixed sub-range order,
 *                            race-free (one thread per bin).
 */
template <typename Payload>
class ParallelPbRunner
{
  public:
    using Tuple = BinTuple<Payload>;

    /**
     * Tuples processed between cancellation checkpoints inside the Init
     * and Binning shard loops. Large enough that the disarmed check
     * (one null load per block) vanishes against thousands of tuple
     * inserts; small enough that a Watchdog-tripped run unwinds within
     * tens of microseconds of work, not a whole shard.
     */
    static constexpr size_t kCancelBlockTuples = 8192;

    /** Hot bins below this population are never worth splitting. */
    static constexpr uint64_t kMinHotTuples = 1024;

    ParallelPbRunner(ThreadPool &pool, const BinningPlan &plan,
                     const PbEngineConfig &engine = {})
        : pool_(pool), plan_(plan), engine_(engine)
    {
    }

    const BinningPlan &plan() const { return plan_; }
    const PbEngineConfig &engine() const { return engine_; }

    /** Shards (== per-thread binners) used by the last run(). */
    size_t shards() const { return shards_; }

    /** Tuples binned across all shards in the last run(). */
    uint64_t tuplesBinned() const { return binned_; }

    /** Tuples that spilled past their planned bin in the last run(). */
    uint64_t overflowTuples() const { return overflow_; }

    /** Cross-slice work-queue claims in the last adaptive Accumulate. */
    uint64_t accumulateSteals() const { return steals_; }

    /** Occupancy sketch of the last run (empty unless computed). */
    const SkewSketch &skewSketch() const { return sketch_; }

    /**
     * Conservation verdict of the last run(): every emitted update must
     * be binned exactly once and no bin may have overflowed. A dropped,
     * replayed, or truncated C-Buffer drain in any shard trips this.
     */
    Status conservation() const { return conservation_; }

    template <typename IndexOf, typename UpdateOf, typename Apply>
    void
    run(size_t num_updates, PhaseRecorder &rec, IndexOf &&index_of,
        UpdateOf &&update_of, Apply &&apply)
    {
        struct NoSlot
        {
        };
        runDispatch<NoSlot>(
            num_updates, rec, index_of, update_of, apply,
            [](const Tuple &, NoSlot &) {}, [](uint32_t, const NoSlot &) {},
            /*commutative=*/false);
    }

    template <typename Slot, typename IndexOf, typename UpdateOf,
              typename Apply, typename ApplyPriv, typename Merge>
    void
    run(size_t num_updates, PhaseRecorder &rec, IndexOf &&index_of,
        UpdateOf &&update_of, Apply &&apply, ApplyPriv &&apply_priv,
        Merge &&merge)
    {
        runDispatch<Slot>(num_updates, rec, index_of, update_of, apply,
                          apply_priv, merge, /*commutative=*/true);
    }

    /**
     * Pull-mode Accumulate (PbDirection::kPull): no binners, no Init,
     * no Binning. Destination ranges are sharded contiguously across
     * pool threads and each owner *gathers* its updates from the
     * kernel's destination-indexed view (a CSC/transposed structure or
     * a filtered stream scan) instead of draining bins. The empty
     * Init/Binning brackets are recorded anyway so per-phase consumers
     * (bench JSON, cobra_cli phase lines, SupervisorReport) see the
     * same three-phase structure with the first two at zero cost —
     * that zero *is* the measurement.
     *
     * pull_range(destBegin, destEnd) must apply every update whose
     * destination lies in [destBegin, destEnd) in global stream order
     * and return how many it applied. Because the push path also
     * applies each destination's updates in stream order (bins are
     * drained shard 0..n-1, shards are contiguous stream slices), pull
     * results are bit-identical to push+binning at every thread count.
     *
     * Resilience parity with push: cancellation checkpoints every
     * ~kCancelBlockTuples gathered updates, kPbStallAccumulate /
     * kPbDropDrain / kBinOffsetSkew fault sites at block granularity
     * (drop skips a block, skew shifts a block's start by
     * skewAmount() destinations), and conservation at the barrier —
     * the applied total must equal the emitted update count.
     */
    template <typename PullRange>
    void
    runPull(size_t num_updates, PhaseRecorder &rec,
            PullRange &&pull_range)
    {
        ExecCtx native; // uninstrumented: full host speed
        TraceSpan span("pb.run", "pb");
        span.arg("engine", static_cast<uint64_t>(engine_.kind));
        span.arg("bins", plan_.numBins);
        span.arg("updates", num_updates);
        span.arg("pull", 1);

        rec.begin(native, phase::kInit);
        rec.end(native);
        rec.begin(native, phase::kBinning);
        rec.end(native);

        const uint64_t nidx = plan_.numIndices;
        const size_t nshards = std::max<size_t>(
            1, std::min<uint64_t>(pool_.numThreads(),
                                  nidx ? nidx : uint64_t{1}));
        const uint64_t chunk = nidx ? (nidx + nshards - 1) / nshards : 0;
        // Checkpoint granularity: one block covers ~kCancelBlockTuples
        // updates at mean density, so a watchdog-tripped run unwinds on
        // the same time scale as the push loops. nidx <= 2^31 keeps the
        // product far from overflow.
        uint64_t block = chunk;
        if (num_updates > 0 && nidx > 0)
            block = std::max<uint64_t>(
                1, std::min(chunk, nidx * kCancelBlockTuples /
                                       num_updates));

        shards_ = nshards;
        binned_ = 0;
        overflow_ = 0;
        steals_ = 0;
        sketch_ = SkewSketch{};

        std::atomic<uint64_t> applied{0};
        rec.begin(native, phase::kAccumulate);
        for (size_t t = 0; t < nshards; ++t) {
            pool_.enqueue([this, t, chunk, block, nidx, &applied,
                           &pull_range] {
                TraceSpan sp("accumulate.pull", "pb");
                sp.arg("shard", t);
                cancellationPoint(); // queued tasks drop out fast
                const uint64_t begin = t * chunk;
                const uint64_t end = std::min(nidx, begin + chunk);
                uint64_t local = 0;
                for (uint64_t lo = begin; lo < end; lo += block) {
                    const uint64_t hi = std::min(end, lo + block);
                    uint64_t alo = lo;
                    if (auto *fi = FaultInjector::active(); fi)
                        [[unlikely]] {
                        const uint32_t blk =
                            static_cast<uint32_t>(lo / block);
                        if (fi->fire(FaultSite::kPbStallAccumulate,
                                     blk))
                            fi->stall();
                        if (fi->fire(FaultSite::kPbDropDrain, blk))
                            continue; // dropped gather block
                        if (fi->fire(FaultSite::kBinOffsetSkew, blk))
                            alo = std::min(hi, lo + fi->skewAmount());
                    }
                    local += pull_range(alo, hi);
                    cancellationPoint();
                }
                applied.fetch_add(local, std::memory_order_relaxed);
                sp.arg("indices", end > begin ? end - begin : 0);
            });
        }
        pool_.wait();
        rec.end(native);

        binned_ = applied.load(std::memory_order_relaxed);
        if (MetricsRegistry *reg = MetricsRegistry::active()) {
            reg->counter("pb.parallel.runs")->inc();
            reg->counter("pb.pull.runs")->inc();
            reg->counter("pb.parallel.tuples_binned")->add(binned_);
            reg->gauge("pb.parallel.shards")
                ->set(static_cast<int64_t>(nshards));
        }
        if (binned_ != num_updates) {
            std::ostringstream oss;
            oss << "pull accumulate applied " << binned_ << " of "
                << num_updates << " updates";
            conservation_ = Status(ErrorCode::kDataLoss, oss.str());
            warn(conservation_.message());
        } else {
            conservation_ = Status::Ok();
        }
    }

  private:
    template <typename Slot, typename IndexOf, typename UpdateOf,
              typename Apply, typename ApplyPriv, typename Merge>
    void
    runDispatch(size_t num_updates, PhaseRecorder &rec,
                IndexOf &&index_of, UpdateOf &&update_of, Apply &&apply,
                ApplyPriv &&apply_priv, Merge &&merge, bool commutative)
    {
        // One umbrella span per run (main thread); the per-phase spans
        // come from the PhaseRecorder brackets and the per-thread
        // shard spans from inside the pool tasks below.
        TraceSpan span("pb.run", "pb");
        span.arg("engine", static_cast<uint64_t>(engine_.kind));
        span.arg("bins", plan_.numBins);
        span.arg("updates", num_updates);
        switch (engine_.kind) {
        case PbEngineKind::kScalar:
            runImpl<PbBinner<Payload>, Slot>(num_updates, rec, index_of,
                                             update_of, apply, apply_priv,
                                             merge, commutative);
            break;
        case PbEngineKind::kWriteCombine:
        case PbEngineKind::kWriteCombineSimd:
            runImpl<WcBinner<Payload>, Slot>(num_updates, rec, index_of,
                                             update_of, apply, apply_priv,
                                             merge, commutative);
            break;
        case PbEngineKind::kHierarchical:
            runImpl<HierarchicalBinner<Payload>, Slot>(
                num_updates, rec, index_of, update_of, apply, apply_priv,
                merge, commutative);
            break;
        case PbEngineKind::kTwoPass:
            runImpl<TwoPassBinner<Payload>, Slot>(
                num_updates, rec, index_of, update_of, apply, apply_priv,
                merge, commutative);
            break;
        }
    }

    template <typename Binner>
    std::unique_ptr<Binner>
    makeBinner() const
    {
        if constexpr (std::is_same_v<Binner, PbBinner<Payload>>)
            return std::make_unique<Binner>(plan_);
        else if constexpr (std::is_same_v<Binner, TwoPassBinner<Payload>>)
            return std::make_unique<Binner>(plan_, engine_.coarseBins);
        else
            return std::make_unique<Binner>(plan_, engine_);
    }

    template <typename Binner, typename Slot, typename IndexOf,
              typename UpdateOf, typename Apply, typename ApplyPriv,
              typename Merge>
    void
    runImpl(size_t num_updates, PhaseRecorder &rec, IndexOf &&index_of,
            UpdateOf &&update_of, Apply &&apply, ApplyPriv &&apply_priv,
            Merge &&merge, bool commutative)
    {
        ExecCtx native; // uninstrumented: full host speed
        const size_t nshards =
            std::max<size_t>(1, std::min(pool_.numThreads(), num_updates));
        const size_t chunk = (num_updates + nshards - 1) / nshards;

        // Binners live only for the duration of one run; the runner
        // caches the cross-run-visible stats at the phase barriers so
        // accessors stay valid after the storage is released.
        std::vector<std::unique_ptr<Binner>> binners(nshards);

        // Init: per-thread counting of its own shard, then per-binner
        // prefix sums — each thread sizes exactly the bins it will fill.
        rec.begin(native, phase::kInit);
        for (size_t t = 0; t < nshards; ++t) {
            pool_.enqueue([this, t, chunk, num_updates, &binners,
                           &index_of] {
                TraceSpan sp("init", "pb");
                sp.arg("shard", t);
                cancellationPoint(); // queued tasks drop out fast
                ExecCtx ctx;
                auto bn = makeBinner<Binner>();
                const size_t begin = t * chunk;
                const size_t end = std::min(num_updates, begin + chunk);
                for (size_t blk = begin; blk < end;
                     blk += kCancelBlockTuples) {
                    const size_t bend =
                        std::min(end, blk + kCancelBlockTuples);
                    for (size_t i = blk; i < bend; ++i)
                        bn->initCount(ctx, index_of(i));
                    cancellationPoint();
                }
                bn->finalizeInit(ctx);
                binners[t] = std::move(bn);
            });
        }
        pool_.wait();

        // Skew sketch at the Init barrier: the counting pass already
        // established every shard's per-bin totals, so measuring the
        // occupancy distribution is a cold O(bins) reduction — nothing
        // is added to any hot loop. Computed when the adaptive
        // scheduler needs it or a registry wants the telemetry.
        const size_t nbins = plan_.numBins;
        std::vector<uint64_t> bin_totals;
        sketch_ = SkewSketch{};
        if (engine_.skewAdaptive || MetricsRegistry::active()) {
            bin_totals.assign(nbins, 0);
            for (const auto &bn : binners) {
                const uint32_t *c = bn->storage().initCounts();
                for (size_t b = 0; b < nbins; ++b)
                    bin_totals[b] += c[b];
            }
            sketch_ = SkewSketch::fromCounts(bin_totals, engine_.skewTopK);
            sketch_.publish();
        }
        rec.end(native);

        // Binning: synchronization-free, per-thread private binners.
        rec.begin(native, phase::kBinning);
        for (size_t t = 0; t < nshards; ++t) {
            pool_.enqueue([t, chunk, num_updates, &binners, &update_of] {
                TraceSpan sp("binning", "pb");
                sp.arg("shard", t);
                cancellationPoint();
                ExecCtx ctx;
                Binner &bn = *binners[t];
                const size_t begin = t * chunk;
                const size_t end = std::min(num_updates, begin + chunk);
                // Hot insert loop untouched: the checkpoint runs once
                // per kCancelBlockTuples block (plus once per C-Buffer
                // drain inside the engines).
                for (size_t blk = begin; blk < end;
                     blk += kCancelBlockTuples) {
                    const size_t bend =
                        std::min(end, blk + kCancelBlockTuples);
                    for (size_t i = blk; i < bend; ++i) {
                        std::pair<uint32_t, Payload> u = update_of(i);
                        bn.insert(ctx, u.first, u.second);
                    }
                    cancellationPoint();
                }
                bn.flush(ctx); // fences the NT drains
                sp.arg("tuples", end - begin);
            });
        }
        pool_.wait(); // Binning/Accumulate barrier
        rec.end(native);

        // Conservation check at the phase barrier: the multiset handed
        // to Accumulate must be exactly one tuple per emitted update.
        shards_ = nshards;
        binned_ = 0;
        overflow_ = 0;
        steals_ = 0;
        for (const auto &bn : binners) {
            binned_ += bn->tuplesBinned();
            overflow_ += bn->storage().overflowTuples();
        }
        if (MetricsRegistry *reg = MetricsRegistry::active()) {
            reg->counter("pb.parallel.runs")->inc();
            reg->counter("pb.parallel.tuples_binned")->add(binned_);
            reg->counter("pb.parallel.overflow_tuples")->add(overflow_);
            reg->gauge("pb.parallel.shards")
                ->set(static_cast<int64_t>(nshards));
        }
        if (binned_ != num_updates || overflow_ != 0) {
            std::ostringstream oss;
            oss << "parallel PB binned " << binned_ << " of "
                << num_updates << " updates (" << overflow_
                << " overflowed)";
            conservation_ = Status(ErrorCode::kDataLoss, oss.str());
            warn(conservation_.message());
        } else {
            conservation_ = Status::Ok();
        }

        // Accumulate: bins are applied by exactly one thread each.
        rec.begin(native, phase::kAccumulate);
        if (!engine_.skewAdaptive) {
            // Static contiguous bin ranges per thread; the owner of bin
            // b streams all threads' copies of b (Algorithm 2, lines
            // 6-11). The paper's layout, and the default.
            const size_t bshards = std::max<size_t>(
                1, std::min(pool_.numThreads(), nbins));
            const size_t bchunk = (nbins + bshards - 1) / bshards;
            for (size_t s = 0; s < bshards; ++s) {
                pool_.enqueue([s, bchunk, nbins, &binners, &apply] {
                    TraceSpan sp("accumulate", "pb");
                    sp.arg("shard", s);
                    cancellationPoint(); // + one per bin (forEachInBin)
                    ExecCtx ctx;
                    const size_t begin = s * bchunk;
                    const size_t end = std::min(nbins, begin + bchunk);
                    for (size_t b = begin; b < end; ++b)
                        for (auto &bn : binners)
                            bn->forEachInBin(ctx,
                                             static_cast<uint32_t>(b),
                                             apply);
                    sp.arg("bins", end - begin);
                });
            }
            pool_.wait();
        } else {
            adaptiveAccumulate<Binner, Slot>(binners, bin_totals, apply,
                                             apply_priv, merge,
                                             commutative);
        }
        rec.end(native);
    }

    /**
     * Skew-adaptive Accumulate: occupancy-balanced bin chunks plus
     * privatized sub-range splits of hot bins, drained via StealQueue.
     */
    template <typename Binner, typename Slot, typename Apply,
              typename ApplyPriv, typename Merge>
    void
    adaptiveAccumulate(std::vector<std::unique_ptr<Binner>> &binners,
                       const std::vector<uint64_t> &bin_totals,
                       Apply &&apply, ApplyPriv &&apply_priv,
                       Merge &&merge, bool commutative)
    {
        const size_t nbins = plan_.numBins;
        const size_t workers = std::max<size_t>(1, pool_.numThreads());
        const uint32_t nsub = std::max(2u, engine_.hotSubRanges);

        // Hot-bin selection: the sketch's heavy hitters that clear the
        // hotFactor threshold and are worth the privatization overhead.
        // Splitting reorders the reduction, so it is offered only to
        // kernels that declared commutative ops.
        struct HotBin
        {
            uint32_t bin = 0;
            uint64_t tuples = 0;
            uint64_t base = 0;     ///< first index of the bin
            uint64_t rangeLen = 0; ///< indices covered by the bin
            std::unique_ptr<Slot[]> slots; ///< nsub * rangeLen, identity
            std::atomic<uint32_t> remaining{0};
        };
        std::vector<std::unique_ptr<HotBin>> hot;
        std::vector<int32_t> hotIndexOfBin; // -1 = cold
        hotIndexOfBin.assign(nbins, -1);
        if (commutative) {
            for (const HeavyBin &h : sketch_.topK) {
                if (!sketch_.isHot(h.tuples, engine_.hotFactor) ||
                    h.tuples < kMinHotTuples)
                    continue;
                auto hb = std::make_unique<HotBin>();
                hb->bin = h.bin;
                hb->tuples = h.tuples;
                hb->base = plan_.binStartIndex(h.bin);
                hb->rangeLen =
                    std::min(plan_.numIndices, hb->base + plan_.binRange()) -
                    hb->base;
                hb->slots = std::unique_ptr<Slot[]>(
                    new Slot[size_t{nsub} * hb->rangeLen]());
                hb->remaining.store(nsub, std::memory_order_relaxed);
                hotIndexOfBin[h.bin] =
                    static_cast<int32_t>(hot.size());
                hot.push_back(std::move(hb));
            }
        }

        // Work items: cold chunks of consecutive bins sized to a tuple
        // target (so a chunk's cost, not its bin count, is even), and
        // nsub sub-range items per hot bin. Item layout depends only on
        // the counted totals — never on the schedule — so every
        // host thread count builds the identical item list.
        struct WorkItem
        {
            uint32_t beginBin = 0; ///< cold: [beginBin, endBin)
            uint32_t endBin = 0;
            int32_t hotIdx = -1; ///< >= 0: sub-range subIdx of hot bin
            uint32_t subIdx = 0;
        };
        const uint64_t total = sketch_.totalTuples;
        const uint64_t target_tuples =
            std::max<uint64_t>(1, total / (workers * 8));
        std::vector<WorkItem> items;
        uint32_t chunk_begin = 0;
        uint64_t chunk_tuples = 0;
        auto flush_chunk = [&](uint32_t end_bin) {
            if (chunk_begin < end_bin)
                items.push_back(WorkItem{chunk_begin, end_bin, -1, 0});
            chunk_begin = end_bin;
            chunk_tuples = 0;
        };
        for (uint32_t b = 0; b < nbins; ++b) {
            if (hotIndexOfBin[b] >= 0) {
                flush_chunk(b);
                chunk_begin = b + 1;
                for (uint32_t s = 0; s < nsub; ++s)
                    items.push_back(
                        WorkItem{b, b + 1, hotIndexOfBin[b], s});
                continue;
            }
            chunk_tuples += bin_totals[b];
            if (chunk_tuples >= target_tuples)
                flush_chunk(b + 1);
        }
        flush_chunk(static_cast<uint32_t>(nbins));

        StealQueue queue(items.size(), workers, pool_.nodeMap());

        // One claim loop per logical worker. Steals are traced
        // individually (cold by definition: a steal means the thief's
        // own slice ran dry), so chrome://tracing shows exactly which
        // items crossed slices.
        auto exec_hot = [&](const WorkItem &it) {
            HotBin &hb = *hot[static_cast<size_t>(it.hotIdx)];
            cancellationPoint();
            if (auto *fi = FaultInjector::active(); fi) [[unlikely]]
                if (fi->fire(FaultSite::kPbStallAccumulate, hb.bin))
                    fi->stall();
            // Sub-range [lo, hi) of the concatenated shard streams for
            // this bin, in shard order — the same global order the
            // static path applies. Bounds derive from counted totals,
            // so they are schedule-independent.
            const uint64_t lo = it.subIdx * hb.tuples / nsub;
            const uint64_t hi = (it.subIdx + 1) * hb.tuples / nsub;
            Slot *slots =
                hb.slots.get() + size_t{it.subIdx} * hb.rangeLen;
            uint64_t pos = 0;
            for (auto &bn : binners) {
                auto span = bn->storage().bin(hb.bin);
                const uint64_t n = span.size();
                if (pos + n > lo && pos < hi) {
                    const uint64_t from = lo > pos ? lo - pos : 0;
                    const uint64_t to = std::min<uint64_t>(n, hi - pos);
                    for (uint64_t i = from; i < to; ++i)
                        apply_priv(span[i],
                                   slots[span[i].index - hb.base]);
                }
                pos += n;
                if (pos >= hi)
                    break;
            }
            // Last finisher folds the privatized partials: fixed
            // sub-range order per index, so the merged result is
            // independent of which worker got here last.
            if (hb.remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
                cancellationPoint();
                for (uint64_t i = 0; i < hb.rangeLen; ++i)
                    for (uint32_t s = 0; s < nsub; ++s)
                        merge(static_cast<uint32_t>(hb.base + i),
                              hb.slots[size_t{s} * hb.rangeLen + i]);
                // Overflow tuples (only present after an injected or
                // corrupted run — conservation already flagged it)
                // still reach the kernel so the oracle sees the full
                // multiset.
                for (auto &bn : binners)
                    if (bn->storage().hasOverflow()) [[unlikely]]
                        bn->storage().forEachOverflowInBin(hb.bin,
                                                           apply);
            }
        };
        auto exec_cold = [&](const WorkItem &it, ExecCtx &ctx) {
            for (uint32_t b = it.beginBin; b < it.endBin; ++b)
                for (auto &bn : binners)
                    bn->forEachInBin(ctx, b, apply);
        };
        for (size_t w = 0; w < workers; ++w) {
            pool_.enqueue([&, w] {
                TraceSpan sp("accumulate.adaptive", "pb");
                sp.arg("worker", w);
                cancellationPoint();
                ExecCtx ctx;
                size_t executed = 0;
                bool stolen = false;
                for (size_t idx; (idx = queue.claim(w, &stolen)) !=
                     StealQueue::kNone;) {
                    const WorkItem &it = items[idx];
                    if (stolen) {
                        TraceSpan st("accumulate.steal", "pb");
                        st.arg("item", idx);
                        st.arg("bin", it.beginBin);
                        if (it.hotIdx >= 0)
                            exec_hot(it);
                        else
                            exec_cold(it, ctx);
                    } else if (it.hotIdx >= 0) {
                        exec_hot(it);
                    } else {
                        exec_cold(it, ctx);
                    }
                    ++executed;
                }
                sp.arg("items", executed);
            });
        }
        pool_.wait();

        steals_ = queue.steals();
        if (MetricsRegistry *reg = MetricsRegistry::active()) {
            reg->counter("pb.accumulate.items")->add(items.size());
            reg->counter("pb.accumulate.steals")->add(steals_);
            reg->gauge("pb.accumulate.hot_bins")
                ->set(static_cast<int64_t>(hot.size()));
        }
    }

    ThreadPool &pool_;
    BinningPlan plan_;
    PbEngineConfig engine_;
    size_t shards_ = 0;
    uint64_t binned_ = 0;
    uint64_t overflow_ = 0;
    uint64_t steals_ = 0;
    SkewSketch sketch_;
    Status conservation_;
};

} // namespace cobra

#endif // COBRA_PB_PARALLEL_PB_H
