/**
 * @file
 * Native host-parallel software PB runtime (paper Algorithm 2, Section
 * III-A — the real-machine half of the methodology).
 *
 * Parallel PB needs no synchronization inside either hot phase:
 *
 *  - Binning: the update stream is sharded contiguously, one shard per
 *    pool thread, and every thread owns a private binner (bins +
 *    C-Buffers), so threads never write shared state. C-Buffer drains use
 *    real non-temporal stores (see stream_copy.h) followed by one fence
 *    at the phase barrier.
 *  - Accumulate: bins are partitioned contiguously across threads. A bin
 *    covers a disjoint index range, so the thread that owns bin b applies
 *    tuples from *every* thread's copy of bin b without racing any other
 *    thread — the apply callback may freely mutate the indexed data.
 *
 * The Binning engine is selectable per run (PbEngineConfig): the
 * instruction-faithful scalar PbBinner (also the simulator's model), or
 * one of the software C-Buffer engines of wc_engine.h (write-combining,
 * write-combining + SIMD batch binning, two-level hierarchical). All
 * engines produce identical per-bin tuple sequences, so kernels and the
 * differential oracle are engine-agnostic.
 *
 * The phase barrier between Binning and Accumulate is the pool's wait();
 * the PhaseRecorder brackets give the same Init/Binning/Accumulate
 * structure as the sequential pipeline (runPbPipeline), so Table-I-style
 * phase breakdowns work for threaded runs too.
 */

#ifndef COBRA_PB_PARALLEL_PB_H
#define COBRA_PB_PARALLEL_PB_H

#include <memory>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pb/engine_config.h"
#include "src/pb/pb_binner.h"
#include "src/pb/wc_engine.h"
#include "src/resilience/cancel.h"
#include "src/sim/phase_recorder.h"
#include "src/util/thread_pool.h"

namespace cobra {

/**
 * Runs the three PB phases for one kernel execution on a ThreadPool.
 *
 * The caller describes its update stream positionally:
 *   index_of(i)  -> uint32_t                     (Init counting pass)
 *   update_of(i) -> std::pair<uint32_t, Payload> (Binning pass)
 *   apply(tuple)                                 (Accumulate pass)
 * apply() runs concurrently on different threads but only ever for
 * disjoint bins (disjoint index ranges); index_of/update_of must be
 * safe to call concurrently for disjoint i (pure reads qualify).
 */
template <typename Payload>
class ParallelPbRunner
{
  public:
    using Tuple = BinTuple<Payload>;

    /**
     * Tuples processed between cancellation checkpoints inside the Init
     * and Binning shard loops. Large enough that the disarmed check
     * (one null load per block) vanishes against thousands of tuple
     * inserts; small enough that a Watchdog-tripped run unwinds within
     * tens of microseconds of work, not a whole shard.
     */
    static constexpr size_t kCancelBlockTuples = 8192;

    ParallelPbRunner(ThreadPool &pool, const BinningPlan &plan,
                     const PbEngineConfig &engine = {})
        : pool_(pool), plan_(plan), engine_(engine)
    {
    }

    const BinningPlan &plan() const { return plan_; }
    const PbEngineConfig &engine() const { return engine_; }

    /** Shards (== per-thread binners) used by the last run(). */
    size_t shards() const { return shards_; }

    /** Tuples binned across all shards in the last run(). */
    uint64_t tuplesBinned() const { return binned_; }

    /** Tuples that spilled past their planned bin in the last run(). */
    uint64_t overflowTuples() const { return overflow_; }

    /**
     * Conservation verdict of the last run(): every emitted update must
     * be binned exactly once and no bin may have overflowed. A dropped,
     * replayed, or truncated C-Buffer drain in any shard trips this.
     */
    Status conservation() const { return conservation_; }

    template <typename IndexOf, typename UpdateOf, typename Apply>
    void
    run(size_t num_updates, PhaseRecorder &rec, IndexOf &&index_of,
        UpdateOf &&update_of, Apply &&apply)
    {
        // One umbrella span per run (main thread); the per-phase spans
        // come from the PhaseRecorder brackets and the per-thread
        // shard spans from inside the pool tasks below.
        TraceSpan span("pb.run", "pb");
        span.arg("engine", static_cast<uint64_t>(engine_.kind));
        span.arg("bins", plan_.numBins);
        span.arg("updates", num_updates);
        switch (engine_.kind) {
        case PbEngineKind::kScalar:
            runImpl<PbBinner<Payload>>(num_updates, rec, index_of,
                                       update_of, apply);
            break;
        case PbEngineKind::kWriteCombine:
        case PbEngineKind::kWriteCombineSimd:
            runImpl<WcBinner<Payload>>(num_updates, rec, index_of,
                                       update_of, apply);
            break;
        case PbEngineKind::kHierarchical:
            runImpl<HierarchicalBinner<Payload>>(num_updates, rec,
                                                 index_of, update_of,
                                                 apply);
            break;
        }
    }

  private:
    template <typename Binner>
    std::unique_ptr<Binner>
    makeBinner() const
    {
        if constexpr (std::is_same_v<Binner, PbBinner<Payload>>)
            return std::make_unique<Binner>(plan_);
        else
            return std::make_unique<Binner>(plan_, engine_);
    }

    template <typename Binner, typename IndexOf, typename UpdateOf,
              typename Apply>
    void
    runImpl(size_t num_updates, PhaseRecorder &rec, IndexOf &&index_of,
            UpdateOf &&update_of, Apply &&apply)
    {
        ExecCtx native; // uninstrumented: full host speed
        const size_t nshards =
            std::max<size_t>(1, std::min(pool_.numThreads(), num_updates));
        const size_t chunk = (num_updates + nshards - 1) / nshards;

        // Binners live only for the duration of one run; the runner
        // caches the cross-run-visible stats at the phase barriers so
        // accessors stay valid after the storage is released.
        std::vector<std::unique_ptr<Binner>> binners(nshards);

        // Init: per-thread counting of its own shard, then per-binner
        // prefix sums — each thread sizes exactly the bins it will fill.
        rec.begin(native, phase::kInit);
        for (size_t t = 0; t < nshards; ++t) {
            pool_.enqueue([this, t, chunk, num_updates, &binners,
                           &index_of] {
                TraceSpan sp("init", "pb");
                sp.arg("shard", t);
                cancellationPoint(); // queued tasks drop out fast
                ExecCtx ctx;
                auto bn = makeBinner<Binner>();
                const size_t begin = t * chunk;
                const size_t end = std::min(num_updates, begin + chunk);
                for (size_t blk = begin; blk < end;
                     blk += kCancelBlockTuples) {
                    const size_t bend =
                        std::min(end, blk + kCancelBlockTuples);
                    for (size_t i = blk; i < bend; ++i)
                        bn->initCount(ctx, index_of(i));
                    cancellationPoint();
                }
                bn->finalizeInit(ctx);
                binners[t] = std::move(bn);
            });
        }
        pool_.wait();
        rec.end(native);

        // Binning: synchronization-free, per-thread private binners.
        rec.begin(native, phase::kBinning);
        for (size_t t = 0; t < nshards; ++t) {
            pool_.enqueue([t, chunk, num_updates, &binners, &update_of] {
                TraceSpan sp("binning", "pb");
                sp.arg("shard", t);
                cancellationPoint();
                ExecCtx ctx;
                Binner &bn = *binners[t];
                const size_t begin = t * chunk;
                const size_t end = std::min(num_updates, begin + chunk);
                // Hot insert loop untouched: the checkpoint runs once
                // per kCancelBlockTuples block (plus once per C-Buffer
                // drain inside the engines).
                for (size_t blk = begin; blk < end;
                     blk += kCancelBlockTuples) {
                    const size_t bend =
                        std::min(end, blk + kCancelBlockTuples);
                    for (size_t i = blk; i < bend; ++i) {
                        std::pair<uint32_t, Payload> u = update_of(i);
                        bn.insert(ctx, u.first, u.second);
                    }
                    cancellationPoint();
                }
                bn.flush(ctx); // fences the NT drains
                sp.arg("tuples", end - begin);
            });
        }
        pool_.wait(); // Binning/Accumulate barrier
        rec.end(native);

        // Conservation check at the phase barrier: the multiset handed
        // to Accumulate must be exactly one tuple per emitted update.
        shards_ = nshards;
        binned_ = 0;
        overflow_ = 0;
        for (const auto &bn : binners) {
            binned_ += bn->tuplesBinned();
            overflow_ += bn->storage().overflowTuples();
        }
        if (MetricsRegistry *reg = MetricsRegistry::active()) {
            reg->counter("pb.parallel.runs")->inc();
            reg->counter("pb.parallel.tuples_binned")->add(binned_);
            reg->counter("pb.parallel.overflow_tuples")->add(overflow_);
            reg->gauge("pb.parallel.shards")
                ->set(static_cast<int64_t>(nshards));
        }
        if (binned_ != num_updates || overflow_ != 0) {
            std::ostringstream oss;
            oss << "parallel PB binned " << binned_ << " of "
                << num_updates << " updates (" << overflow_
                << " overflowed)";
            conservation_ = Status(ErrorCode::kDataLoss, oss.str());
            warn(conservation_.message());
        } else {
            conservation_ = Status::Ok();
        }

        // Accumulate: contiguous bin ranges per thread; the owner of bin
        // b streams all threads' copies of b (Algorithm 2, lines 6-11).
        rec.begin(native, phase::kAccumulate);
        const size_t nbins = plan_.numBins;
        const size_t bshards = std::max<size_t>(
            1, std::min(pool_.numThreads(), nbins));
        const size_t bchunk = (nbins + bshards - 1) / bshards;
        for (size_t s = 0; s < bshards; ++s) {
            pool_.enqueue([s, bchunk, nbins, &binners, &apply] {
                TraceSpan sp("accumulate", "pb");
                sp.arg("shard", s);
                cancellationPoint(); // + one per bin inside forEachInBin
                ExecCtx ctx;
                const size_t begin = s * bchunk;
                const size_t end = std::min(nbins, begin + bchunk);
                for (size_t b = begin; b < end; ++b)
                    for (auto &bn : binners)
                        bn->forEachInBin(ctx, static_cast<uint32_t>(b),
                                         apply);
                sp.arg("bins", end - begin);
            });
        }
        pool_.wait();
        rec.end(native);
    }

    ThreadPool &pool_;
    BinningPlan plan_;
    PbEngineConfig engine_;
    size_t shards_ = 0;
    uint64_t binned_ = 0;
    uint64_t overflow_ = 0;
    Status conservation_;
};

} // namespace cobra

#endif // COBRA_PB_PARALLEL_PB_H
