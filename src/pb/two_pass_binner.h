/**
 * @file
 * Two-pass software radix partitioning.
 *
 * PB is an instance of radix partitioning (paper footnote 2), and the
 * partitioning literature the paper cites ([54], [65]) resolves the
 * fan-out-vs-locality tension in *software* with multiple passes: a
 * first pass scatters tuples into a small number of coarse bins (whose
 * coalescing buffers fit in the upper caches), then a second pass
 * re-partitions each coarse bin into its fine bins — achieving a large
 * final fan-out while every pass runs with a cache-friendly buffer set
 * (pass 2 only touches the fine buffers of one coarse range at a time).
 *
 * The price is moving every tuple twice through memory. COBRA reaches
 * the same fine fan-out moving each tuple once (through the C-Buffer
 * hierarchy) — the comparison bench_ablation_two_pass.cc draws.
 *
 * Same Init / insert / flush / forEachInBin surface as PbBinner, at
 * fine-bin granularity.
 *
 * Native promotion (--engine two_pass): under an uninstrumented ExecCtx
 * the binner doubles as a ParallelPbRunner engine — the software escape
 * hatch when the requested fan-out exceeds even the LLC-derived budget
 * (auto_tune.h picks it there). The native path adds what every native
 * engine carries and the simulated comparison must not pay for: the
 * drain-site fault hooks on pass 2 (pass 1 inherits PbBinner's), and
 * per-bin cancellation + stall sites + the overflow tail in
 * forEachInBin. All additions are gated on !ctx.simulated(), so
 * bench_ablation_two_pass's counted costs are unchanged.
 */

#ifndef COBRA_PB_TWO_PASS_BINNER_H
#define COBRA_PB_TWO_PASS_BINNER_H

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/pb/pb_binner.h"
#include "src/pb/wc_engine.h"
#include "src/util/bitops.h"

namespace cobra {

/** Two-pass radix partitioner with a PbBinner-compatible surface. */
template <typename Payload>
class TwoPassBinner
{
  public:
    using Tuple = BinTuple<Payload>;
    static constexpr uint32_t kTuplesPerBuffer =
        PbBinner<Payload>::kTuplesPerBuffer;

    /**
     * @param fine_plan the final (fine) partition
     * @param coarse_bins first-pass fan-out (default ~sqrt(fine), the
     *        classic multi-pass choice)
     */
    explicit TwoPassBinner(const BinningPlan &fine_plan,
                           uint32_t coarse_bins = 0)
        : finePlan(fine_plan),
          coarse(BinningPlan::forMaxBins(
              fine_plan.numIndices,
              coarse_bins
                  ? coarse_bins
                  : static_cast<uint32_t>(ceilPow2(static_cast<uint64_t>(
                        std::max(1.0, std::sqrt(static_cast<double>(
                                          fine_plan.numBins)))))))),
          fineStore(fine_plan),
          fineBufs(size_t{fine_plan.numBins} * kTuplesPerBuffer),
          fineCounts(fine_plan.numBins)
    {
    }

    const BinningPlan &plan() const { return finePlan; }
    uint32_t numBins() const { return finePlan.numBins; }
    uint32_t numCoarseBins() const { return coarse.numBins(); }
    BinStorage<Payload> &storage() { return fineStore; }

    /** Init: one streaming pass counts both partitions. */
    void
    initCount(ExecCtx &ctx, uint32_t index)
    {
        coarse.initCount(ctx, index);
        fineStore.countInsert(ctx, index);
    }

    void
    finalizeInit(ExecCtx &ctx)
    {
        coarse.finalizeInit(ctx);
        fineStore.finalizeInit(ctx);
    }

    /** Pass 1: insert into the coarse partition. */
    void
    insert(ExecCtx &ctx, uint32_t index, const Payload &payload)
    {
        coarse.insert(ctx, index, payload);
    }

    /**
     * Flush pass 1, then run pass 2: stream each coarse bin and
     * re-partition its tuples into the fine bins. After this,
     * forEachInBin serves fine bins.
     */
    void
    flush(ExecCtx &ctx)
    {
        coarse.flush(ctx);
        for (uint32_t cb = 0; cb < coarse.numBins(); ++cb) {
            coarse.forEachInBin(ctx, cb, [&](const Tuple &t) {
                insertFine(ctx, t);
            });
        }
        // Flush partial fine buffers.
        for (uint32_t b = 0; b < finePlan.numBins; ++b) {
            ctx.load(&fineCounts[b], sizeof(uint32_t));
            ctx.branch(branch_site::kPbFlushLoop, fineCounts[b] != 0);
            if (fineCounts[b] != 0)
                drainFine(ctx, b);
        }
    }

    template <typename Fn>
    void
    forEachInBin(ExecCtx &ctx, uint32_t bin, Fn &&fn)
    {
        if (!ctx.simulated()) {
            // Native engine contract: per-bin cancellation checkpoint,
            // stall site, prefetch, and the overflow tail.
            wc_detail::forEachInBinNative(fineStore, bin, fn);
            return;
        }
        auto tuples = fineStore.bin(bin);
        for (const Tuple &t : tuples) {
            ctx.load(&t, sizeof(Tuple));
            ctx.instr(1);
            fn(t);
        }
        ctx.branch(branch_site::kAccumulateLoop, !tuples.empty());
    }

    uint64_t tuplesBinned() const { return fineStore.totalTuples(); }

  private:
    /** Pass-2 insert: identical cost structure to PbBinner::insert. */
    void
    insertFine(ExecCtx &ctx, const Tuple &t)
    {
        const uint32_t b = finePlan.binOf(t.index);
        ctx.instr(2);
        uint32_t &cnt = fineCounts[b];
        ctx.load(&cnt, sizeof(cnt));
        Tuple *buf = &fineBufs[size_t{b} * kTuplesPerBuffer];
        buf[cnt] = t;
        ctx.store(&buf[cnt], sizeof(Tuple));
        ++cnt;
        ctx.instr(1);
        ctx.store(&cnt, sizeof(cnt));
        const bool full = cnt == kTuplesPerBuffer;
        ctx.branch(branch_site::kPbBufferFull, full);
        if (full)
            drainFine(ctx, b);
    }

    void
    drainFine(ExecCtx &ctx, uint32_t b)
    {
        uint32_t n = fineCounts[b];
        Tuple *src = &fineBufs[size_t{b} * kTuplesPerBuffer];
        if (!ctx.simulated()) {
            // Native engine contract: pass-2 drains carry the same
            // fault sites as every other native drain path, so the
            // mutation matrix covers both tuple movements.
            n = wc_detail::injectDrainFaults(fineStore, b, src, n);
            if (n == ~0u) [[unlikely]] { // injected drop
                fineCounts[b] = 0;
                return;
            }
        }
        Tuple *dst = fineStore.appendRaw(b, n);
        std::memcpy(dst, src, n * sizeof(Tuple));
        ctx.instr(2);
        ctx.load(fineStore.cursorAddr(b), 8);
        ctx.store(fineStore.cursorAddr(b), 8);
        ctx.ntStore(dst, n * static_cast<uint32_t>(sizeof(Tuple)));
        fineCounts[b] = 0;
        ctx.store(&fineCounts[b], sizeof(uint32_t));
    }

    BinningPlan finePlan;
    PbBinner<Payload> coarse;
    BinStorage<Payload> fineStore;
    AlignedArray<Tuple> fineBufs;
    AlignedArray<uint32_t> fineCounts;
};

} // namespace cobra

#endif // COBRA_PB_TWO_PASS_BINNER_H
