/**
 * @file
 * Online skew sketch of one PB run's bin occupancy.
 *
 * The paper's evaluation bins roughly-uniform update streams, but real
 * irregular workloads are power-law: a handful of hot destination bins
 * hold most of the tuples, and a static contiguous bin split leaves
 * every Accumulate thread idle behind the one that owns the fattest
 * bin. The Init phase already counts every future tuple per bin
 * (BinStorage::initCounts), so skew is measurable for free at the
 * Init/Binning barrier — no extra work in any hot loop.
 *
 * The sketch reduces the per-bin histogram to what the Accumulate
 * scheduler (src/pb/parallel_pb.h) needs:
 *
 *  - mean/max tuples per bin and the max/mean imbalance factor (1.0 =
 *    perfectly even; the straggler bound of the static split is
 *    proportional to it);
 *  - a Gini coefficient of the bin-occupancy distribution (0 = uniform,
 *    -> 1 = one bin holds everything), computed exactly from the sorted
 *    histogram in O(bins log bins) cold-path time;
 *  - the top-K heaviest bins, the candidates for hot-bin splitting.
 *
 * Published via MetricsRegistry (pb.skew.*) so archived bench runs and
 * the CLI's --metrics output carry the measured skew next to the phase
 * times it explains.
 */

#ifndef COBRA_PB_SKEW_SKETCH_H
#define COBRA_PB_SKEW_SKETCH_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/obs/metrics.h"

namespace cobra {

/** One bin's entry in the heavy-hitter estimate. */
struct HeavyBin
{
    uint32_t bin = 0;
    uint64_t tuples = 0;
};

/** Occupancy-skew summary of one run's per-bin tuple counts. */
struct SkewSketch
{
    uint64_t totalTuples = 0;
    uint32_t numBins = 0;
    double meanTuples = 0.0;  ///< totalTuples / numBins
    uint64_t maxTuples = 0;   ///< fattest bin
    double imbalance = 1.0;   ///< max / mean (1.0 when uniform or empty)
    double gini = 0.0;        ///< 0 uniform .. ->1 single hot bin
    std::vector<HeavyBin> topK; ///< heaviest first

    /**
     * Build from the per-bin totals of one run. @p top_k bounds the
     * heavy-hitter list (and therefore how many bins the scheduler may
     * split); 0 keeps only the aggregate statistics.
     */
    static SkewSketch
    fromCounts(const std::vector<uint64_t> &counts, uint32_t top_k = 8)
    {
        SkewSketch s;
        s.numBins = static_cast<uint32_t>(counts.size());
        if (counts.empty())
            return s;
        for (uint64_t c : counts)
            s.totalTuples += c;
        s.meanTuples =
            static_cast<double>(s.totalTuples) / s.numBins;
        s.maxTuples = *std::max_element(counts.begin(), counts.end());
        s.imbalance = s.totalTuples == 0
            ? 1.0
            : static_cast<double>(s.maxTuples) / s.meanTuples;

        // Exact Gini from the sorted histogram:
        //   G = (2 * sum_i i*x_(i) / (n * sum x)) - (n + 1) / n
        // with x_(i) ascending, i 1-based. 0 for uniform occupancy,
        // (n-1)/n when a single bin holds every tuple.
        if (s.totalTuples != 0 && s.numBins > 1) {
            std::vector<uint64_t> sorted(counts);
            std::sort(sorted.begin(), sorted.end());
            double weighted = 0.0;
            for (size_t i = 0; i < sorted.size(); ++i)
                weighted += static_cast<double>(i + 1) *
                    static_cast<double>(sorted[i]);
            const double n = static_cast<double>(s.numBins);
            const double total = static_cast<double>(s.totalTuples);
            s.gini = 2.0 * weighted / (n * total) - (n + 1.0) / n;
            s.gini = std::clamp(s.gini, 0.0, 1.0);
        }

        // Top-K heavy bins via partial sort of (count, bin) pairs.
        if (top_k != 0) {
            std::vector<HeavyBin> all(counts.size());
            for (uint32_t b = 0; b < counts.size(); ++b)
                all[b] = HeavyBin{b, counts[b]};
            const size_t k =
                std::min<size_t>(top_k, all.size());
            std::partial_sort(all.begin(), all.begin() + k, all.end(),
                              [](const HeavyBin &a, const HeavyBin &b) {
                                  return a.tuples != b.tuples
                                      ? a.tuples > b.tuples
                                      : a.bin < b.bin;
                              });
            all.resize(k);
            s.topK = std::move(all);
        }
        return s;
    }

    /** Is @p tuples a hot bin under threshold factor @p hot_factor? */
    bool
    isHot(uint64_t tuples, double hot_factor) const
    {
        return meanTuples > 0.0 &&
            static_cast<double>(tuples) > hot_factor * meanTuples;
    }

    /**
     * Publish to the active MetricsRegistry (no-op when none). Gauges
     * carry the dimensionless ratios scaled by 1000 (the registry is
     * integer-valued).
     */
    void
    publish() const
    {
        MetricsRegistry *reg = MetricsRegistry::active();
        if (!reg)
            return;
        reg->gauge("pb.skew.gini_x1000")
            ->set(static_cast<int64_t>(gini * 1000.0));
        reg->gauge("pb.skew.imbalance_x1000")
            ->set(static_cast<int64_t>(imbalance * 1000.0));
        reg->gauge("pb.skew.max_bin_tuples")
            ->set(static_cast<int64_t>(maxTuples));
        if (!topK.empty())
            reg->gauge("pb.skew.top_bin")
                ->set(static_cast<int64_t>(topK.front().bin));
    }
};

} // namespace cobra

#endif // COBRA_PB_SKEW_SKETCH_H
