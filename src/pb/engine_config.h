/**
 * @file
 * Native PB Binning-engine selection.
 *
 * PR 1's ParallelPbRunner binned with one flat scalar loop — the exact
 * software baseline whose per-tuple overhead and bin-count compromise
 * the paper's hardware (COBRA's C-Buffer hierarchy) exists to remove.
 * This header names the software analogues the native runtime now
 * offers, so kernels, benchmarks, and the CLI can A/B them:
 *
 *  - kScalar           PR 1 reference: tuple-at-a-time binning through
 *                      PbBinner (also the instrumented/simulated path).
 *  - kWriteCombine     64B-aligned per-bin staging lines drained with
 *                      aligned non-temporal bursts (software C-Buffer).
 *  - kWriteCombineSimd kWriteCombine plus batch-of-8 bin-index
 *                      computation (AVX2 when compiled+detected, scalar
 *                      otherwise) and staged prefetch of the target
 *                      C-Buffer lines.
 *  - kHierarchical     two-level binning: a coarse partition whose WC
 *                      working set stays cache-resident, then an
 *                      in-cache refine into the final bins — the
 *                      software escape from the bin-count compromise
 *                      for large index spaces (paper Section V-A's
 *                      per-level power-of-two bin ranges).
 *  - kTwoPass          two-pass radix partitioning (two_pass_binner.h,
 *                      promoted from simulator-comparison code): pass 1
 *                      scatters into coarse bins, pass 2 re-partitions
 *                      each coarse bin into its fine bins. Every tuple
 *                      moves twice, but each pass runs with a tiny,
 *                      cache-resident buffer set — the fallback when
 *                      the requested fan-out exceeds even the LLC
 *                      budget (partitioning literature [54], [65]).
 *
 * Orthogonal to the engine choice, the skew* knobs below enable the
 * skew-adaptive Accumulate scheduler (skew sketch + hot-bin splitting +
 * work-stealing; see src/pb/skew_sketch.h and parallel_pb.h).
 *
 * Kept dependency-free so src/kernels/kernel.h can expose an engine
 * parameter without dragging the engines themselves into every kernel.
 */

#ifndef COBRA_PB_ENGINE_CONFIG_H
#define COBRA_PB_ENGINE_CONFIG_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace cobra {

/** Which native Binning engine ParallelPbRunner uses. */
enum class PbEngineKind : uint8_t
{
    kScalar = 0,
    kWriteCombine,
    kWriteCombineSimd,
    kHierarchical,
    kTwoPass,
};

inline const char *
to_string(PbEngineKind k)
{
    switch (k) {
      case PbEngineKind::kScalar: return "scalar";
      case PbEngineKind::kWriteCombine: return "wc";
      case PbEngineKind::kWriteCombineSimd: return "wc-simd";
      case PbEngineKind::kHierarchical: return "hier";
      case PbEngineKind::kTwoPass: return "two_pass";
    }
    return "unknown";
}

inline std::optional<PbEngineKind>
engineKindFromName(std::string_view name)
{
    for (PbEngineKind k :
         {PbEngineKind::kScalar, PbEngineKind::kWriteCombine,
          PbEngineKind::kWriteCombineSimd, PbEngineKind::kHierarchical,
          PbEngineKind::kTwoPass})
        if (name == to_string(k))
            return k;
    return std::nullopt;
}

/**
 * Which way updates travel through Accumulate.
 *
 *  - kPush  Init/Binning/Accumulate as in the paper: updates are
 *           scattered into destination-range bins, then each bin owner
 *           applies them. Always available; the only option for
 *           kernels without a destination-indexed gather view.
 *  - kPull  Accumulate-only: destination ranges are sharded across
 *           threads and each owner *gathers* its updates from a
 *           CSC/transposed view of the input. No bins, no binners, no
 *           Init/Binning phases — the win when the destination working
 *           set is already cache-resident.
 *  - kAuto  resolvePbDirection() (src/pb/auto_tune.h) picks per run
 *           from update density and the LLC budget.
 */
enum class PbDirection : uint8_t
{
    kPush = 0,
    kPull,
    kAuto,
};

inline const char *
to_string(PbDirection d)
{
    switch (d) {
      case PbDirection::kPush: return "push";
      case PbDirection::kPull: return "pull";
      case PbDirection::kAuto: return "auto";
    }
    return "unknown";
}

inline std::optional<PbDirection>
directionFromName(std::string_view name)
{
    for (PbDirection d : {PbDirection::kPush, PbDirection::kPull,
                          PbDirection::kAuto})
        if (name == to_string(d))
            return d;
    return std::nullopt;
}

/** Engine choice plus its tunables (auto-tuned in src/pb/auto_tune.h). */
struct PbEngineConfig
{
    PbEngineKind kind = PbEngineKind::kScalar;

    /**
     * Hierarchical/two-pass only: level-1 (coarse) bin target; 0 lets
     * the engine pick a balanced split. The engine rounds the implied
     * per-level bin range to a power of two (paper Section V-A).
     */
    uint32_t coarseBins = 0;

    /**
     * WC depth: staging lines per bin (drained wholesale when full).
     * Depth 1 = one 64B C-Buffer per bin; deeper buffers halve drain
     * frequency at the cost of a proportionally larger working set.
     */
    uint32_t wcLines = 1;

    /**
     * Testing hook: pin batch bin-index computation to the portable
     * scalar implementation even when an AVX2 build detects AVX2, so
     * the fallback path stays exercised on SIMD-capable hosts.
     */
    bool forceScalarBatch = false;

    /**
     * Skew-adaptive Accumulate: measure bin-occupancy skew at the
     * Init barrier (SkewSketch, free — the counts already exist) and
     * replace the static contiguous bin split with a stolen work-queue
     * of occupancy-balanced bin chunks. Off by default: the static
     * split is the paper's layout and the right answer for uniform
     * streams.
     */
    bool skewAdaptive = false;

    /**
     * Heavy-hitter depth of the sketch == most bins the scheduler may
     * split into privatized sub-ranges per run.
     */
    uint32_t skewTopK = 8;

    /**
     * A bin is "hot" (eligible for splitting) when its tuple count
     * exceeds hotFactor * mean. Below that, stealing whole bin chunks
     * already levels the finish line.
     */
    double hotFactor = 8.0;

    /**
     * Sub-ranges a hot bin is split into. Fixed (not derived from the
     * pool size) so the split points — and therefore the privatized
     * partial results and their fixed-order merge — are identical for
     * every host thread count: determinism is schedule-independent by
     * construction.
     */
    uint32_t hotSubRanges = 4;

    /**
     * Update-propagation direction (appended last so positional
     * aggregate initializers of the earlier fields keep compiling).
     * kPull routes runs through ParallelPbRunner::runPull — the
     * destination-sharded gather that skips Init+Binning entirely —
     * when the kernel provides a gather view; kernels without one fall
     * back to push. kAuto defers to resolvePbDirection().
     */
    PbDirection direction = PbDirection::kPush;
};

} // namespace cobra

#endif // COBRA_PB_ENGINE_CONFIG_H
