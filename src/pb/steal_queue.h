/**
 * @file
 * Chunked work-queue with work-stealing for the Accumulate phase.
 *
 * The static Accumulate split hands each thread one contiguous bin
 * range; under skewed occupancy the phase then ends when the owner of
 * the fattest range finishes, with every other thread idle. This queue
 * replaces the ranges with an array of work items (bin chunks and
 * hot-bin sub-ranges, built by the scheduler in parallel_pb.h) that
 * workers claim one at a time:
 *
 *  - every worker owns a contiguous slice of the item array and drains
 *    it through a private atomic cursor (the common, contention-free
 *    path — same locality as the static split when occupancy is even);
 *  - a worker whose slice runs dry *steals*: it claims from another
 *    worker's cursor, preferring same-NUMA-node victims so cross-socket
 *    traffic starts only after a whole socket has run dry.
 *
 * Correctness is by construction: every item index is handed out by
 * exactly one fetch_add on exactly one cursor, so each item is executed
 * exactly once no matter how claims interleave (the work-conservation
 * property test_skew_adaptive.cc proves under TSan). Which worker runs
 * an item is schedule-dependent; items are built so that this never
 * affects results (disjoint bins, or privatized sub-ranges merged in
 * fixed order — see parallel_pb.h).
 *
 * Forward progress: claims are wait-free (one fetch_add per attempt,
 * no CAS retry loops), so a worker can lose the race for a given item
 * but never for *all* items — some worker always advances. The
 * pb-steal-starve fault site makes that guarantee testable: a fired
 * injector forces the claiming worker to repeatedly "lose" (yield)
 * before its steal, and the run must still complete within its
 * deadline.
 */

#ifndef COBRA_PB_STEAL_QUEUE_H
#define COBRA_PB_STEAL_QUEUE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/check/fault_injector.h"

namespace cobra {

/** Claim-exactly-once distributor of [0, numItems) across workers. */
class StealQueue
{
  public:
    static constexpr size_t kNone = ~size_t{0};

    /**
     * @param num_items   items to distribute (indices [0, num_items))
     * @param num_workers claiming workers (ids [0, num_workers))
     * @param worker_node optional NUMA node per worker (from
     *        ThreadPool::workerNode); shapes steal preference only,
     *        never correctness. Empty = all workers equivalent.
     */
    StealQueue(size_t num_items, size_t num_workers,
               std::vector<int> worker_node = {})
        : nitems_(num_items),
          nworkers_(num_workers ? num_workers : 1),
          ranges_(std::make_unique<Range[]>(nworkers_))
    {
        // Contiguous slices, parallelFor-style: worker w owns
        // [w*chunk, min(n, (w+1)*chunk)). Trailing workers may own an
        // empty slice when items < workers — they go straight to
        // stealing.
        const size_t chunk =
            (nitems_ + nworkers_ - 1) / std::max<size_t>(1, nworkers_);
        for (size_t w = 0; w < nworkers_; ++w) {
            const size_t begin = std::min(nitems_, w * chunk);
            ranges_[w].next.store(begin, std::memory_order_relaxed);
            ranges_[w].end = std::min(nitems_, begin + chunk);
        }
        // Deterministic per-worker victim order: same-node victims
        // first (ring order from the thief), then the rest.
        victims_.resize(nworkers_);
        for (size_t w = 0; w < nworkers_; ++w) {
            auto node_of = [&](size_t v) {
                return v < worker_node.size() ? worker_node[v] : 0;
            };
            for (int pass = 0; pass < 2; ++pass)
                for (size_t d = 1; d < nworkers_; ++d) {
                    const size_t v = (w + d) % nworkers_;
                    const bool same = node_of(v) == node_of(w);
                    if (same == (pass == 0))
                        victims_[w].push_back(v);
                }
        }
    }

    /**
     * Next item for @p worker, or kNone when the queue is drained.
     * @p stolen (optional) reports whether the item came from another
     * worker's slice.
     */
    size_t
    claim(size_t worker, bool *stolen = nullptr)
    {
        const size_t w = worker % nworkers_;
        if (stolen)
            *stolen = false;
        if (size_t item = take(ranges_[w]); item != kNone)
            return item;
        for (size_t v : victims_[w]) {
            // Injection point: the thief repeatedly loses the race for
            // this victim's items (bounded yielding), proving the claim
            // loop's forward-progress guarantee rather than assuming it.
            if (auto *fi = FaultInjector::active(); fi) [[unlikely]]
                if (fi->fire(FaultSite::kPbStealStarve,
                             static_cast<uint32_t>(w)))
                    fi->loseRaces();
            if (size_t item = take(ranges_[v]); item != kNone) {
                steals_.fetch_add(1, std::memory_order_relaxed);
                if (stolen)
                    *stolen = true;
                return item;
            }
        }
        return kNone;
    }

    size_t numItems() const { return nitems_; }

    /** Cross-slice claims so far (scheduler imbalance telemetry). */
    uint64_t
    steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

  private:
    // One cursor per cache line: the owner's common-path fetch_add must
    // not false-share with its neighbors'.
    struct alignas(64) Range
    {
        std::atomic<size_t> next{0};
        size_t end = 0;
    };

    /** Wait-free claim from one slice; kNone when it is drained. */
    size_t
    take(Range &r)
    {
        if (r.next.load(std::memory_order_relaxed) >= r.end)
            return kNone; // cheap pre-check: no fetch_add on dry slices
        const size_t item =
            r.next.fetch_add(1, std::memory_order_relaxed);
        return item < r.end ? item : kNone;
    }

    size_t nitems_;
    size_t nworkers_;
    std::unique_ptr<Range[]> ranges_;
    std::vector<std::vector<size_t>> victims_;
    std::atomic<uint64_t> steals_{0};
};

} // namespace cobra

#endif // COBRA_PB_STEAL_QUEUE_H
