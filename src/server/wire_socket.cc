#include "src/server/wire_socket.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/server/batch_server.h"
#include "src/server/frame.h"

namespace cobra {

namespace {

Status
errnoStatus(const std::string &what)
{
    return Status(ErrorCode::kIoError,
                  what + ": " + std::strerror(errno));
}

/** Fill @p addr for @p path; rejects paths longer than sun_path. */
Status
unixAddress(const std::string &path, sockaddr_un *addr)
{
    if (path.empty() || path.size() >= sizeof(addr->sun_path))
        return Status(ErrorCode::kInvalidArgument,
                      "unix socket path must be 1.." +
                          std::to_string(sizeof(addr->sun_path) - 1) +
                          " bytes: '" + path + "'");
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size());
    return Status::Ok();
}

} // namespace

Status
readExact(int fd, void *buf, size_t len)
{
    uint8_t *p = static_cast<uint8_t *>(buf);
    size_t got = 0;
    while (got < len) {
        ssize_t n = ::read(fd, p + got, len - got);
        if (n == 0)
            return Status(ErrorCode::kIoError,
                          "connection closed mid-message (" +
                              std::to_string(got) + " of " +
                              std::to_string(len) + " bytes)");
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errnoStatus("read");
        }
        got += static_cast<size_t>(n);
    }
    return Status::Ok();
}

Status
writeAll(int fd, const void *buf, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(buf);
    size_t sent = 0;
    while (sent < len) {
        ssize_t n = ::write(fd, p + sent, len - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errnoStatus("write");
        }
        sent += static_cast<size_t>(n);
    }
    return Status::Ok();
}

Status
readFrame(int fd, std::vector<uint8_t> *out)
{
    out->clear();
    uint8_t len_bytes[4];
    // Distinguish "peer finished" (clean EOF at a frame boundary)
    // from "peer died mid-frame" by reading the first byte alone.
    ssize_t n;
    do {
        n = ::read(fd, len_bytes, 1);
    } while (n < 0 && errno == EINTR);
    if (n == 0)
        return Status::Ok(); // clean end-of-stream, *out stays empty
    if (n < 0)
        return errnoStatus("read");
    if (Status s = readExact(fd, len_bytes + 1, 3); !s.ok())
        return s;
    const uint32_t len = uint32_t{len_bytes[0]} |
                         (uint32_t{len_bytes[1]} << 8) |
                         (uint32_t{len_bytes[2]} << 16) |
                         (uint32_t{len_bytes[3]} << 24);
    if (len == 0 || uint64_t{len} > kMaxFrameBytes)
        return Status(ErrorCode::kCorruptFile,
                      "frame length " + std::to_string(len) +
                          " outside (0, " +
                          std::to_string(kMaxFrameBytes) + "]");
    out->resize(len);
    return readExact(fd, out->data(), len);
}

Status
writeFrame(int fd, const uint8_t *data, size_t len)
{
    if (len == 0 || len > kMaxFrameBytes)
        return Status(ErrorCode::kInvalidArgument,
                      "refusing to send a frame of " +
                          std::to_string(len) + " bytes");
    const uint32_t l = static_cast<uint32_t>(len);
    const uint8_t len_bytes[4] = {
        static_cast<uint8_t>(l), static_cast<uint8_t>(l >> 8),
        static_cast<uint8_t>(l >> 16), static_cast<uint8_t>(l >> 24)};
    if (Status s = writeAll(fd, len_bytes, 4); !s.ok())
        return s;
    return writeAll(fd, data, len);
}

SocketServer::SocketServer(BatchServer &server, std::string path)
    : server_(server), path_(std::move(path))
{
}

SocketServer::~SocketServer()
{
    stop();
}

Status
SocketServer::start()
{
    sockaddr_un addr;
    if (Status s = unixAddress(path_, &addr); !s.ok())
        return s;
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        return errnoStatus("socket");
    ::unlink(path_.c_str()); // replace a stale socket file
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        Status s = errnoStatus("bind '" + path_ + "'");
        ::close(listen_fd_);
        listen_fd_ = -1;
        return s;
    }
    if (::listen(listen_fd_, 64) < 0) {
        Status s = errnoStatus("listen");
        ::close(listen_fd_);
        listen_fd_ = -1;
        return s;
    }
    acceptor_ = std::thread([this] { acceptLoop(); });
    return Status::Ok();
}

void
SocketServer::stop()
{
    if (stopping_.exchange(true))
        return;
    if (const int fd = listen_fd_.exchange(-1); fd >= 0) {
        // shutdown() unblocks accept() so the acceptor exits promptly.
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    if (acceptor_.joinable())
        acceptor_.join();
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lk(conn_mtx_);
        conns.swap(conns_);
    }
    for (auto &t : conns)
        t.join();
    ::unlink(path_.c_str());
}

void
SocketServer::acceptLoop()
{
    for (;;) {
        const int lfd = listen_fd_.load(std::memory_order_acquire);
        if (lfd < 0)
            return; // stop() already closed the socket
        int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // closed by stop(), or a fatal accept error
        }
        if (stopping_.load(std::memory_order_acquire)) {
            ::close(fd);
            return;
        }
        std::lock_guard<std::mutex> lk(conn_mtx_);
        conns_.emplace_back([this, fd] {
            serveConnection(fd);
            ::close(fd);
        });
    }
}

void
SocketServer::serveConnection(int fd)
{
    std::vector<uint8_t> buf;
    while (!stopping_.load(std::memory_order_acquire)) {
        Status s = readFrame(fd, &buf);
        if (!s.ok() || buf.empty())
            return; // peer finished, died, or desynchronized
        RequestFrame req;
        ResponseFrame resp;
        if (Status d = decodeRequest(buf.data(), buf.size(), &req);
            !d.ok()) {
            // Intact transport, bad frame: answer with the typed
            // reason. tenant/request ids are unknown (the header may
            // be the corrupt part), so they echo as zero.
            resp.code = d.code();
            resp.message = d.message();
        } else {
            resp = server_.submit(std::move(req)).get();
        }
        const std::vector<uint8_t> out = encodeResponse(resp);
        if (Status w = writeFrame(fd, out.data(), out.size()); !w.ok())
            return;
    }
}

} // namespace cobra
