/**
 * @file
 * Admission control for the batch server: reject-before-enqueue.
 *
 * An overloaded service has exactly one good failure mode — a fast,
 * typed "no" at the front door. Everything the AdmissionController
 * does serves that: a request is charged against every limit it could
 * later violate *before* it is allowed into a queue, so the queues
 * stay bounded by construction, memory the admitted work will need is
 * reserved up front, and an over-capacity client learns immediately
 * (kUnavailable for transient pressure it should back off and retry;
 * kResourceExhausted when its own quota is the problem) instead of
 * timing out behind a queue it was never going to clear.
 *
 * Limits enforced, in check order (cheapest first):
 *
 *  - global outstanding cap:  queued + running, across all tenants;
 *  - per-tenant outstanding cap: one tenant cannot own the whole queue
 *    (the WRR dispatcher then guarantees the others' drain rate);
 *  - global + per-tenant memory budgets: the request's *estimated*
 *    peak footprint (estimateRequestCostBytes) is charged against two
 *    MemoryBudget instances — the same primitive the supervised run
 *    later charges its real allocations against, so the estimate is a
 *    reservation, not a guess: the run's own budget is set to exactly
 *    the reserved amount and the degradation ladder shrinks the plan
 *    if the estimate was tight.
 *
 * Accounting is exact: every successful tryAdmit() is balanced by
 * exactly one release() when the request reaches a terminal state
 * (completed, failed, or shed), which the chaos test closes the books
 * on.
 */

#ifndef COBRA_SERVER_ADMISSION_H
#define COBRA_SERVER_ADMISSION_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "src/resilience/memory_budget.h"
#include "src/server/frame.h"
#include "src/util/error.h"

namespace cobra {

/** Front-door limits. 0 means "unlimited" for every field. */
struct AdmissionConfig
{
    /** Queued + running, across all tenants. */
    uint32_t maxOutstandingGlobal = 64;

    /** Queued + running, per tenant. */
    uint32_t maxOutstandingPerTenant = 16;

    /** Reserved-footprint cap across all tenants (bytes). */
    uint64_t globalBudgetBytes = 0;

    /** Reserved-footprint cap per tenant (bytes). */
    uint64_t tenantBudgetBytes = 0;
};

/**
 * Upper bound on the peak budget-charged footprint of one request's
 * supervised run: payload staging plus the widest engine's bin
 * storage and WC lines across @p pool_threads workers, plus slack for
 * coarse-pass buffers. Deliberately generous — an admitted request
 * must not routinely trip its own reservation — but proportional to
 * the request, so one huge frame cannot reserve a sliver and then
 * blow the heap.
 */
uint64_t estimateRequestCostBytes(const RequestFrame &req,
                                  size_t pool_threads);

/** Decision + bookkeeping for one request's admission lifecycle. */
class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionConfig cfg);

    /**
     * Try to admit a request reserving @p cost_bytes. Ok() admits (the
     * caller *must* later call release() exactly once with the same
     * tenant and cost); otherwise:
     *  - kUnavailable: an outstanding cap or the global budget is
     *    full — transient, client should back off and retry;
     *  - kResourceExhausted: the tenant's own budget is full — the
     *    tenant is the pressure, backing off elsewhere won't help.
     */
    Status tryAdmit(uint64_t tenant, uint64_t cost_bytes);

    /** The request reached a terminal state; returns its reservation. */
    void release(uint64_t tenant, uint64_t cost_bytes);

    /** Queued-or-running request count (for tests / introspection). */
    uint32_t outstanding() const;

    /** Reserved bytes currently charged to the global budget. */
    uint64_t reservedBytes() const { return global_budget_.usedBytes(); }

  private:
    const AdmissionConfig cfg_;
    MemoryBudget global_budget_;

    mutable std::mutex mtx_;
    uint32_t outstanding_global_ = 0;
    std::map<uint64_t, uint32_t> outstanding_tenant_;
    std::map<uint64_t, std::unique_ptr<MemoryBudget>> tenant_budgets_;
};

} // namespace cobra

#endif // COBRA_SERVER_ADMISSION_H
