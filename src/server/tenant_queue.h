/**
 * @file
 * Per-tenant bounded-by-admission queues with weighted round-robin
 * dispatch order.
 *
 * The dispatcher's fairness property lives here: each tenant owns a
 * FIFO, and pop() serves tenants in weighted round-robin order —
 * tenant i gets up to weight_i dequeues per round while it has work.
 * A tenant that floods its queue (the admission controller caps how
 * far) therefore delays only itself: a light tenant's next request is
 * at most one round away, never behind the heavy tenant's backlog.
 * This is the queueing-side complement of admission control — caps
 * bound how much work waits, WRR bounds *whose* work waits.
 *
 * Depth is NOT enforced here: every push() was already admitted (and
 * counted) by the AdmissionController, so the queue trusts its caller
 * and never refuses. Templated on the work item so the WRR order is
 * unit-testable with plain values.
 *
 * close() wakes every blocked pop() but does not discard items:
 * pop() keeps returning queued work after close so the shutdown path
 * can shed each remaining request with a typed response instead of
 * silently dropping promises. pop() returns false only when closed
 * *and* drained.
 */

#ifndef COBRA_SERVER_TENANT_QUEUE_H
#define COBRA_SERVER_TENANT_QUEUE_H

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

namespace cobra {

/** Multi-tenant FIFO set with WRR pop order. */
template <typename T> class TenantQueues
{
  public:
    /** @param weights per-tenant WRR weight; absent tenants get 1. */
    explicit TenantQueues(std::map<uint64_t, uint32_t> weights = {})
        : weights_(std::move(weights))
    {
    }

    /** Enqueue @p item for @p tenant (never refuses; see file docs). */
    void
    push(uint64_t tenant, T item)
    {
        {
            std::lock_guard<std::mutex> lk(mtx_);
            Entry &e = entry(tenant);
            e.q.push_back(std::move(item));
            ++total_;
        }
        cv_.notify_one();
    }

    /**
     * Dequeue the next item in WRR order into @p out (and its owner
     * into @p tenant). Blocks while open and empty; returns false when
     * closed and drained.
     */
    bool
    pop(T *out, uint64_t *tenant)
    {
        std::unique_lock<std::mutex> lk(mtx_);
        cv_.wait(lk, [this] { return total_ != 0 || closed_; });
        if (total_ == 0)
            return false;
        // Sweep 1 spends the round's remaining credits; if only
        // credit-exhausted (or empty) queues remain, start a new
        // round and sweep again — with total_ != 0 the second sweep
        // always finds an item.
        for (int sweep = 0; sweep < 2; ++sweep) {
            for (size_t i = 0; i < order_.size(); ++i) {
                const size_t idx = (cursor_ + i) % order_.size();
                Entry &e = entries_.at(order_[idx]);
                if (e.q.empty() || e.credit == 0)
                    continue;
                *out = std::move(e.q.front());
                e.q.pop_front();
                *tenant = order_[idx];
                --e.credit;
                --total_;
                // Stay on this tenant while it has credit; else hand
                // the cursor to the next one.
                cursor_ = e.credit == 0 ? (idx + 1) % order_.size() : idx;
                return true;
            }
            for (auto &kv : entries_)
                kv.second.credit = kv.second.weight;
        }
        return false; // unreachable: total_ != 0 guarantees sweep 2 hits
    }

    /** Wake all poppers; pop() drains the backlog then returns false. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lk(mtx_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mtx_);
        return total_;
    }

  private:
    struct Entry
    {
        std::deque<T> q;
        uint32_t weight = 1;
        uint32_t credit = 1;
    };

    Entry &
    entry(uint64_t tenant)
    {
        auto it = entries_.find(tenant);
        if (it == entries_.end()) {
            Entry e;
            auto w = weights_.find(tenant);
            e.weight = std::max<uint32_t>(
                1, w == weights_.end() ? 1 : w->second);
            e.credit = e.weight;
            it = entries_.emplace(tenant, std::move(e)).first;
            order_.push_back(tenant);
        }
        return it->second;
    }

    const std::map<uint64_t, uint32_t> weights_;

    mutable std::mutex mtx_;
    std::condition_variable cv_;
    std::map<uint64_t, Entry> entries_;
    std::vector<uint64_t> order_; ///< tenants in first-seen order
    size_t cursor_ = 0;
    size_t total_ = 0;
    bool closed_ = false;
};

} // namespace cobra

#endif // COBRA_SERVER_TENANT_QUEUE_H
