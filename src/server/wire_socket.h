/**
 * @file
 * Length-prefixed framing over unix-domain stream sockets, plus the
 * accept loop that serves a BatchServer.
 *
 * Framing: every message is a u32 little-endian byte length followed
 * by exactly that many bytes (one encoded RequestFrame or
 * ResponseFrame). The reader enforces kMaxFrameBytes *before*
 * allocating — a hostile 4 GiB length prefix costs the server a
 * comparison, not an allocation — and handles short reads and EINTR
 * the way any blocking-socket loop must.
 *
 * Transport errors are kIoError (the peer is gone; nothing to
 * answer); a frame that arrives intact but fails to decode gets a
 * typed error *response* on the same connection, because a client
 * that sent garbage is exactly the client that needs to hear why.
 *
 * The SocketServer itself is a thin adapter: one accept loop, one
 * thread per connection (bounded), each connection a sequential
 * read-request / write-response loop delegating every decision to
 * BatchServer::submit(). All admission, fairness, and deadline logic
 * lives behind that call — the transport adds nothing but bytes.
 */

#ifndef COBRA_SERVER_WIRE_SOCKET_H
#define COBRA_SERVER_WIRE_SOCKET_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/util/error.h"

namespace cobra {

class BatchServer;

/** Read exactly @p len bytes (loops over short reads / EINTR). */
Status readExact(int fd, void *buf, size_t len);

/** Write all @p len bytes (loops over short writes / EINTR). */
Status writeAll(int fd, const void *buf, size_t len);

/**
 * Read one length-prefixed frame into @p out. kIoError on transport
 * failure or clean EOF mid-frame; kCorruptFile on an over-cap length
 * (the connection is then unsynchronized and must be closed).
 * A clean EOF *before* any length byte returns kOk with an empty
 * @p out — the peer simply finished.
 */
Status readFrame(int fd, std::vector<uint8_t> *out);

/** Write one length-prefixed frame. */
Status writeFrame(int fd, const uint8_t *data, size_t len);

/** Serve a BatchServer over a unix-domain socket. */
class SocketServer
{
  public:
    /**
     * @param path filesystem socket path; an existing socket file is
     *        replaced (the standard daemon-restart idiom).
     */
    SocketServer(BatchServer &server, std::string path);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Bind + listen + start the accept loop. */
    Status start();

    /** Stop accepting, close every connection, join all threads. */
    void stop();

    const std::string &path() const { return path_; }

  private:
    void acceptLoop();
    void serveConnection(int fd);

    BatchServer &server_;
    const std::string path_;
    /** Atomic: stop() closes + poisons it while acceptLoop() reads. */
    std::atomic<int> listen_fd_{-1};
    std::thread acceptor_;
    std::atomic<bool> stopping_{false};

    std::mutex conn_mtx_;
    std::vector<std::thread> conns_;
};

} // namespace cobra

#endif // COBRA_SERVER_WIRE_SOCKET_H
