#include "src/server/batch_server.h"

#include <optional>
#include <utility>

#include <cstring>

#include "src/check/differential_oracle.h"
#include "src/check/fault_injector.h"
#include "src/durability/checkpoint.h"
#include "src/graph/types.h"
#include "src/kernels/degree_count.h"
#include "src/kernels/neighbor_populate.h"
#include "src/kernels/pagerank.h"
#include "src/kernels/spmv.h"
#include "src/obs/metrics.h"
#include "src/sparse/coo.h"
#include "src/sparse/reference.h"
#include "src/obs/trace.h"
#include "src/resilience/memory_budget.h"
#include "src/resilience/run_supervisor.h"
#include "src/sim/phase_recorder.h"
#include "src/util/timer.h"

namespace cobra {

namespace {

uint64_t
microsSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

void
bumpGlobal(const char *what)
{
    if (MetricsRegistry *reg = MetricsRegistry::active())
        reg->counter(std::string("server.") + what)->inc();
}

} // namespace

BatchServer::BatchServer(ServerConfig cfg, ThreadPool &pool)
    : cfg_(std::move(cfg)), pool_(pool), admission_(cfg_.admission),
      queues_(cfg_.tenantWeights)
{
    if (cfg_.durability.enabled()) {
        // Recovery runs to completion (or throws its typed refusal)
        // before the first dispatcher exists: no request can observe a
        // half-recovered graph.
        recover();
        wal_ = std::make_unique<WalWriter>(
            cfg_.durability.walDir, cfg_.durability.fsync,
            nextLsn_.load(std::memory_order_relaxed) + 1);
        if (cfg_.durability.checkpointInterval.count() > 0)
            ckptThread_ = std::thread([this] { checkpointLoop(); });
    }
    const size_t n = std::max<size_t>(1, cfg_.dispatchThreads);
    dispatchers_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        dispatchers_.emplace_back([this] { dispatchLoop(); });
}

BatchServer::~BatchServer()
{
    stop();
}

void
BatchServer::stop()
{
    if (stopped_.exchange(true))
        return;
    {
        // Exclusive gate: after this block no submit() can still be
        // between its stopping check and its push.
        std::unique_lock<std::shared_mutex> lk(gate_);
        stopping_.store(true, std::memory_order_release);
    }
    queues_.close();
    for (auto &d : dispatchers_)
        d.join();
    // Shed anything a racing submit pushed after the dispatchers had
    // already drained and exited — a promise must never dangle.
    std::unique_ptr<Job> job;
    uint64_t tenant = 0;
    while (queues_.pop(&job, &tenant)) {
        ResponseFrame resp;
        resp.code = ErrorCode::kUnavailable;
        resp.message = "server shut down before the request ran";
        finish(std::move(job), std::move(resp));
    }

    // Durability epilogue (dispatchers are gone, so the graphs are
    // quiescent): stop the checkpoint timer, write the final
    // checkpoint — unless the config models a crash, or the WAL is
    // poisoned and the graphs may be ahead of what was acknowledged —
    // then close the log.
    if (ckptThread_.joinable()) {
        {
            std::lock_guard<std::mutex> lk(ckptCvMu_);
            ckptStop_ = true;
        }
        ckptCv_.notify_all();
        ckptThread_.join();
    }
    if (wal_) {
        if (cfg_.durability.checkpointOnShutdown && !wal_->poisoned()) {
            if (Status st = checkpointNow(); !st.ok())
                warn("shutdown checkpoint failed (WAL remains "
                     "authoritative): " +
                     st.toString());
        }
        std::lock_guard<std::mutex> wl(walMu_);
        wal_->close();
    }
}

void
BatchServer::bumpTenant(uint64_t tenant, const char *what)
{
    if (!cfg_.perTenantMetrics)
        return;
    if (MetricsRegistry *reg = MetricsRegistry::active())
        reg->counter("server.tenant." + std::to_string(tenant) + "." +
                     what)
            ->inc();
}

std::future<ResponseFrame>
BatchServer::submit(RequestFrame req)
{
    received_.fetch_add(1, std::memory_order_relaxed);
    bumpGlobal("received");

    ResponseFrame reject;
    reject.tenantId = req.tenantId;
    reject.requestId = req.requestId;

    // Typed fast-fail paths: a promise resolved before the caller even
    // sees the future. Nothing below the admission check runs for
    // these — that is the backpressure contract.
    auto rejectNow = [&](ErrorCode code,
                         std::string msg) -> std::future<ResponseFrame> {
        reject.code = code;
        reject.message = std::move(msg);
        std::promise<ResponseFrame> p;
        p.set_value(std::move(reject));
        return p.get_future();
    };

    std::shared_lock<std::shared_mutex> gate(gate_);
    if (stopping_.load(std::memory_order_acquire)) {
        rejectedOverload_.fetch_add(1, std::memory_order_relaxed);
        bumpGlobal("rejected");
        return rejectNow(ErrorCode::kUnavailable,
                         "server is shutting down");
    }
    if (Status s = validateRequest(req); !s.ok()) {
        rejectedInvalid_.fetch_add(1, std::memory_order_relaxed);
        bumpGlobal("rejected");
        bumpTenant(req.tenantId, "rejected");
        return rejectNow(s.code(), s.message());
    }

    const uint64_t cost =
        estimateRequestCostBytes(req, pool_.numThreads());
    if (Status s = admission_.tryAdmit(req.tenantId, cost); !s.ok()) {
        if (s.code() == ErrorCode::kResourceExhausted)
            rejectedQuota_.fetch_add(1, std::memory_order_relaxed);
        else
            rejectedOverload_.fetch_add(1, std::memory_order_relaxed);
        bumpGlobal("rejected");
        bumpTenant(req.tenantId, "rejected");
        return rejectNow(s.code(), s.message());
    }

    admitted_.fetch_add(1, std::memory_order_relaxed);
    bumpGlobal("admitted");
    bumpTenant(req.tenantId, "admitted");

    auto job = std::make_unique<Job>();
    job->req = std::move(req);
    job->costBytes = cost;
    if (job->req.deadlineMs != 0)
        job->deadline = Deadline::after(
            std::chrono::milliseconds(job->req.deadlineMs));
    job->admittedAt = std::chrono::steady_clock::now();
    std::future<ResponseFrame> fut = job->promise.get_future();
    const uint64_t tenant = job->req.tenantId;
    queues_.push(tenant, std::move(job));
    if (MetricsRegistry *reg = MetricsRegistry::active())
        reg->gauge("server.queue_depth")
            ->set(static_cast<int64_t>(queues_.size()));
    return fut;
}

void
BatchServer::finish(std::unique_ptr<Job> job, ResponseFrame resp)
{
    resp.tenantId = job->req.tenantId;
    resp.requestId = job->req.requestId;
    if (resp.queueMicros == 0)
        resp.queueMicros = microsSince(job->admittedAt);

    const uint64_t tenant = job->req.tenantId;
    if (resp.code == ErrorCode::kOk) {
        completed_.fetch_add(1, std::memory_order_relaxed);
        bumpGlobal("completed");
        bumpTenant(tenant, "completed");
    } else if (resp.attempts == 0) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        bumpGlobal("shed");
        bumpTenant(tenant, "shed");
    } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
        bumpGlobal("failed");
        bumpTenant(tenant, "failed");
    }
    if (resp.code == ErrorCode::kDeadlineExceeded) {
        deadlineExceeded_.fetch_add(1, std::memory_order_relaxed);
        bumpGlobal("deadline_exceeded");
    }
    admission_.release(tenant, job->costBytes);
    job->promise.set_value(std::move(resp));
}

std::shared_ptr<BatchServer::TenantGraph>
BatchServer::tenantGraph(uint64_t tenant, bool create)
{
    std::lock_guard<std::mutex> lk(tenantsMu_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end())
        return it->second;
    if (!create)
        return nullptr;
    auto state = std::make_shared<TenantGraph>();
    tenants_.emplace(tenant, state);
    return state;
}

ResponseFrame
BatchServer::executeMutate(Job &job)
{
    const RequestFrame &req = job.req;
    ResponseFrame resp;
    resp.queueMicros = microsSince(job.admittedAt);
    resp.attempts = 1;
    resp.finalEngine = req.engine;
    resp.finalBins = req.bins;

    TraceSpan sp("server.mutate", "server");
    sp.arg("tenant", req.tenantId);
    sp.arg("request", req.requestId);
    sp.arg("ops", req.numUpdates());

    // Decode the batch: bit 31 of the src word marks a delete.
    MutationBatch batch;
    batch.ops.reserve(req.numUpdates());
    for (size_t i = 0; i + 1 < req.payload.size(); i += 2) {
        const uint32_t sw = req.payload[i];
        batch.ops.push_back(MutationBatch::Op{
            sw & ~kMutateDeleteBit, req.payload[i + 1],
            (sw & kMutateDeleteBit) != 0});
    }

    mutateBatches_.fetch_add(1, std::memory_order_relaxed);
    mutateOps_.fetch_add(batch.size(), std::memory_order_relaxed);
    // Every early exit below bounced the whole batch before commit:
    // the ops are booked rejected so the op-level conservation
    // identity still closes.
    auto bounce = [&](ErrorCode code, std::string msg) {
        mutateRejected_.fetch_add(batch.size(),
                                  std::memory_order_relaxed);
        resp.code = code;
        resp.message = std::move(msg);
        return resp;
    };

    std::shared_ptr<TenantGraph> state =
        tenantGraph(req.tenantId, /*create=*/true);
    std::lock_guard<std::mutex> lk(state->mu);
    if (state->graph == nullptr) {
        state->numIndices = req.numIndices;
        state->graph = std::make_unique<DynamicGraph>(
            static_cast<NodeId>(req.numIndices));
        state->degrees =
            std::make_unique<IncrementalDegreeCount>(*state->graph);
        state->pagerank =
            std::make_unique<DeltaPagerank>(*state->graph);
    } else if (state->numIndices != req.numIndices) {
        return bounce(ErrorCode::kFailedPrecondition,
                      "tenant graph has " +
                          std::to_string(state->numIndices) +
                          " vertices; request says " +
                          std::to_string(req.numIndices));
    }

    // The request's slice of the shared pool + its scoped chaos plan,
    // mirroring the stateless execute() path.
    ThreadPool::Group group(pool_);
    ThreadPool::Group::Scope group_scope(group);
    std::optional<FaultInjector> injector;
    std::optional<FaultInjector::Scope> injector_scope;
    if (req.injectSite != 0) {
        injector.emplace(static_cast<FaultSite>(req.injectSite),
                         req.injectFireAt == 0 ? 1 : req.injectFireAt,
                         req.injectSeed);
        injector_scope.emplace(*injector);
    }

    PbEngineConfig ecfg;
    ecfg.kind = req.engine;
    ecfg.wcLines = req.wcLines;
    ecfg.skewAdaptive = req.skewAdaptive;

    PhaseRecorder rec;
    Timer t;

    // Trial-commit: the batch runs against a copy, so a conservation
    // failure (injected or real) can never corrupt the served graph.
    DynamicGraph trial(*state->graph);
    BatchResult r =
        trial.applyBatchParallel(pool_, rec, batch, req.bins, ecfg);
    if (!trial.health().ok())
        return bounce(trial.health().code(), trial.health().message());
    if (!r.conserved(batch.size()))
        return bounce(ErrorCode::kDataLoss,
                      "batch accounting does not close: " +
                          std::to_string(batch.size()) +
                          " submitted != " + std::to_string(r.applied()) +
                          " applied + " + std::to_string(r.deduped) +
                          " deduped + " + std::to_string(r.rejected) +
                          " rejected");
    if (job.deadline.armed() && job.deadline.expired())
        return bounce(ErrorCode::kDeadlineExceeded,
                      "deadline expired while applying the batch; "
                      "batch not committed");

    // Durability point: the batch becomes acknowledgeable only once
    // its WAL record — the original wire frame stamped with the
    // post-commit fingerprint — is appended (and fsynced per policy).
    // Any failure here bounces the whole batch typed and UNcommitted:
    // the served graph, the incremental results, and the client all
    // agree the batch never happened. walMu_ makes lsn assignment and
    // the append one atomic step, so on-disk order is lsn order.
    uint64_t walLsn = 0;
    if (wal_) {
        WalRecord wrec;
        wrec.postFingerprint = trial.snapshotFingerprint();
        wrec.postLiveEdges = trial.numEdges();
        try {
            wrec.payload = encodeRequest(req);
        } catch (const Error &e) {
            return bounce(e.code(),
                          std::string("durability encode failed; batch "
                                      "not committed: ") +
                              e.what());
        }
        std::lock_guard<std::mutex> wl(walMu_);
        wrec.lsn = nextLsn_.load(std::memory_order_relaxed) + 1;
        if (Status ws = wal_->append(wrec); !ws.ok())
            return bounce(ws.code(),
                          "durability append failed; batch not "
                          "committed: " +
                              ws.message());
        nextLsn_.store(wrec.lsn, std::memory_order_relaxed);
        walLsn = wrec.lsn;
    }

    // Commit, then fold the batch into the incremental results and
    // certify each against a full recompute of the new graph.
    *state->graph = std::move(trial);
    if (walLsn != 0)
        state->lastLsn = walLsn;
    mutateApplied_.fetch_add(r.applied(), std::memory_order_relaxed);
    mutateDeduped_.fetch_add(r.deduped, std::memory_order_relaxed);
    mutateRejected_.fetch_add(r.rejected, std::memory_order_relaxed);

    uint64_t dirty = 0;
    if (req.kernel == ServerKernel::kDegreeCount) {
        state->degrees->update(r, *state->graph);
        dirty = state->degrees->lastDirty();
        const std::vector<EdgeOffset> full =
            IncrementalDegreeCount::fullRecompute(*state->graph);
        if (auto d = DifferentialOracle::firstDivergence(
                state->degrees->degrees(), full, "incremental degrees")) {
            // Certification failed: degrade to the trusted full result
            // (rebuilding the incremental state from the graph) and
            // say so — never serve an uncertified answer silently.
            ++resp.degradations;
            resp.message = "incremental recompute diverged (" +
                           d->detail + "); served full recompute";
            state->degrees = std::make_unique<IncrementalDegreeCount>(
                *state->graph);
        } else {
            recertifications_.fetch_add(1, std::memory_order_relaxed);
        }
        std::vector<uint32_t> w(state->degrees->degrees().size());
        for (size_t i = 0; i < w.size(); ++i)
            w[i] =
                static_cast<uint32_t>(state->degrees->degrees()[i]);
        resp.resultChecksum = fnv1a(w.data(), w.size());
    } else {
        Status st = state->pagerank->apply(batch, r, *state->graph);
        dirty = state->pagerank->lastDirty();
        std::optional<Divergence> d;
        if (st.ok())
            d = DifferentialOracle::firstDivergence(
                state->pagerank->scores(),
                DeltaPagerank::fullRecompute(*state->graph),
                "incremental pagerank");
        if (!st.ok() || d) {
            ++resp.degradations;
            resp.message = "incremental recompute diverged (" +
                           (st.ok() ? d->detail : st.message()) +
                           "); served full recompute";
            state->pagerank =
                std::make_unique<DeltaPagerank>(*state->graph);
        } else {
            recertifications_.fetch_add(1, std::memory_order_relaxed);
        }
        const auto &s = state->pagerank->scores();
        std::vector<uint32_t> w(s.size());
        std::memcpy(w.data(), s.data(), s.size() * sizeof(float));
        resp.resultChecksum = fnv1a(w.data(), w.size());
    }

    // Threshold compaction rides the request that crossed the line.
    // compact() is all-or-nothing: on a (possibly injected) failure
    // the committed batch stands, the delta segments stay, and the
    // failure is answered typed.
    if (state->graph->needsCompaction()) {
        Status cs = state->graph->compact(pool_, rec, req.bins, ecfg);
        if (!cs.ok()) {
            resp.code = cs.code();
            resp.message = "compaction failed (batch remains "
                           "committed): " +
                           cs.message();
            resp.serverMicros =
                static_cast<uint64_t>(t.seconds() * 1e6);
            return resp;
        }
        compactions_.fetch_add(1, std::memory_order_relaxed);
    }

    resp.serverMicros = static_cast<uint64_t>(t.seconds() * 1e6);
    resp.code = ErrorCode::kOk;
    if (resp.message.empty())
        resp.message = "applied=" + std::to_string(r.applied()) +
                       " deduped=" + std::to_string(r.deduped) +
                       " rejected=" + std::to_string(r.rejected) +
                       " dirty=" + std::to_string(dirty) +
                       " edges=" +
                       std::to_string(state->graph->numEdges());
    return resp;
}

ResponseFrame
BatchServer::executeSnapshot(Job &job)
{
    const RequestFrame &req = job.req;
    ResponseFrame resp;
    resp.queueMicros = microsSince(job.admittedAt);
    resp.attempts = 1;
    resp.finalEngine = req.engine;
    resp.finalBins = req.bins;

    TraceSpan sp("server.snapshot", "server");
    sp.arg("tenant", req.tenantId);
    sp.arg("request", req.requestId);

    std::shared_ptr<TenantGraph> state =
        tenantGraph(req.tenantId, /*create=*/false);
    if (state == nullptr) {
        resp.code = ErrorCode::kFailedPrecondition;
        resp.message = "tenant has no mutable graph (no kMutate seen)";
        return resp;
    }
    std::lock_guard<std::mutex> lk(state->mu);
    if (state->numIndices != req.numIndices) {
        resp.code = ErrorCode::kFailedPrecondition;
        resp.message = "tenant graph has " +
                       std::to_string(state->numIndices) +
                       " vertices; request says " +
                       std::to_string(req.numIndices);
        return resp;
    }

    Timer t;
    // Fingerprint the full merged structure: the degree sequence
    // followed by every neighbor id, in snapshot order. Two replicas
    // that applied the same batches agree on this bit-for-bit.
    const CsrGraph snap = state->graph->snapshotCsr();
    std::vector<uint32_t> w;
    w.reserve(snap.numNodes() + snap.numEdges());
    for (NodeId v = 0; v < snap.numNodes(); ++v)
        w.push_back(static_cast<uint32_t>(snap.degree(v)));
    for (NodeId n : snap.neighborsArray())
        w.push_back(n);
    resp.resultChecksum = fnv1a(w.data(), w.size());
    resp.serverMicros = static_cast<uint64_t>(t.seconds() * 1e6);
    resp.code = ErrorCode::kOk;
    resp.message = "edges=" + std::to_string(state->graph->numEdges()) +
                   " delta=" +
                   std::to_string(state->graph->deltaEdges()) +
                   " compactions=" +
                   std::to_string(state->graph->compactions());
    return resp;
}

ResponseFrame
BatchServer::execute(Job &job)
{
    if (job.req.op == RequestOp::kMutate)
        return executeMutate(job);
    if (job.req.op == RequestOp::kSnapshot)
        return executeSnapshot(job);

    const RequestFrame &req = job.req;
    ResponseFrame resp;
    resp.queueMicros = microsSince(job.admittedAt);

    TraceSpan sp("server.request", "server");
    sp.arg("tenant", req.tenantId);
    sp.arg("request", req.requestId);
    sp.arg("kernel", static_cast<uint64_t>(req.kernel));
    sp.arg("updates", req.numUpdates());

    // Rebuild the edgelist the kernels consume from the flat payload
    // (already bounds-checked against numIndices at validation).
    EdgeList edges;
    edges.reserve(req.numUpdates());
    for (size_t i = 0; i + 1 < req.payload.size(); i += 2)
        edges.push_back(Edge{req.payload[i], req.payload[i + 1]});

    // Kernel source data must outlive the kernel (the kernels hold raw
    // pointers), so the graph/matrix storage is declared first.
    std::optional<CsrGraph> outG, inG;
    CsrMatrix a, at;
    std::vector<double> xvec;
    std::unique_ptr<DegreeCountKernel> degree;
    std::unique_ptr<NeighborPopulateKernel> np;
    std::unique_ptr<PagerankKernel> pagerank;
    std::unique_ptr<SpmvKernel> spmv;
    Kernel *kernel = nullptr;
    const NodeId nodes = static_cast<NodeId>(req.numIndices);
    switch (req.kernel) {
      case ServerKernel::kDegreeCount:
        degree = std::make_unique<DegreeCountKernel>(nodes, &edges);
        kernel = degree.get();
        break;
      case ServerKernel::kNeighborPopulate:
        np = std::make_unique<NeighborPopulateKernel>(nodes, &edges);
        kernel = np.get();
        break;
      case ServerKernel::kPagerank:
        outG.emplace(CsrGraph::build(nodes, edges));
        inG.emplace(CsrGraph::buildTranspose(nodes, edges));
        pagerank = std::make_unique<PagerankKernel>(&*outG, &*inG);
        kernel = pagerank.get();
        break;
      case ServerKernel::kSpmv: {
        // The wire carries only the sparsity pattern; values and x are
        // derived deterministically from positions so both ends can
        // reproduce the exact matrix without shipping doubles.
        CooMatrix coo;
        coo.numRows = nodes;
        coo.numCols = nodes;
        for (size_t i = 0; i + 1 < req.payload.size(); i += 2)
            coo.add(req.payload[i], req.payload[i + 1],
                    1.0 + static_cast<double>((i / 2) % 13) * 0.125);
        a = CsrMatrix::fromCoo(coo);
        at = transposeRef(a);
        xvec.resize(nodes);
        for (NodeId j = 0; j < nodes; ++j)
            xvec[j] = 0.5 + static_cast<double>(j % 9) * 0.25;
        spmv = std::make_unique<SpmvKernel>(&a, &at, &xvec);
        kernel = spmv.get();
        break;
      }
    }

    SupervisorConfig sc;
    sc.deadline = cfg_.defaultAttemptDeadline;
    if (job.deadline.armed())
        sc.overallDeadline = job.deadline.at();
    sc.retry.maxAttempts = std::max(1u, cfg_.retryAttempts);
    // Deterministic per-request jitter: retries of the same request
    // back off identically on replay, different requests decorrelate.
    sc.retry.seed = req.requestId ^ req.tenantId;
    sc.memBudgetBytes = job.costBytes;
    sc.allowBaselineFallback = cfg_.allowBaselineFallback;
    sc.minBins = cfg_.minBins;

    PbEngineConfig ecfg;
    ecfg.kind = req.engine;
    ecfg.wcLines = req.wcLines;
    ecfg.skewAdaptive = req.skewAdaptive;

    // The request's own slice of the shared pool: shards, failures,
    // and cancellation all scoped to this group, so concurrent
    // requests interleave on the workers without sharing a barrier.
    ThreadPool::Group group(pool_);
    ThreadPool::Group::Scope group_scope(group);

    // Request-carried chaos plan, scoped to this dispatcher thread and
    // inherited only by this request's tasks.
    std::optional<FaultInjector> injector;
    std::optional<FaultInjector::Scope> injector_scope;
    if (req.injectSite != 0) {
        injector.emplace(static_cast<FaultSite>(req.injectSite),
                         req.injectFireAt == 0 ? 1 : req.injectFireAt,
                         req.injectSeed);
        injector_scope.emplace(*injector);
    }

    PhaseRecorder rec;
    RunSupervisor sup(sc);
    Timer t;
    SupervisorReport rep =
        sup.runPbParallel(*kernel, pool_, rec, req.bins, ecfg);
    resp.serverMicros = static_cast<uint64_t>(t.seconds() * 1e6);

    resp.code = rep.ok ? ErrorCode::kOk : rep.finalStatus.code();
    if (!rep.ok)
        resp.message = rep.finalStatus.message();
    resp.attempts = static_cast<uint32_t>(rep.attempts.size());
    resp.retries = rep.retries;
    resp.degradations = rep.degradations;
    resp.usedBaseline = rep.usedBaseline;
    resp.finalEngine = rep.finalEngine.kind;
    resp.finalBins = rep.finalBins;

    if (rep.ok) {
        if (degree) {
            const auto &d = degree->degrees();
            resp.resultChecksum = fnv1a(d.data(), d.size());
        } else if (np) {
            // Fingerprint the degree sequence of the produced CSR:
            // deterministic across engines (adjacency interleaving is
            // not), and the oracle already certified full equality.
            CsrGraph g = np->result();
            std::vector<uint32_t> degs(g.numNodes());
            for (NodeId v = 0; v < g.numNodes(); ++v)
                degs[v] = static_cast<uint32_t>(g.degree(v));
            resp.resultChecksum = fnv1a(degs.data(), degs.size());
        } else if (pagerank) {
            // Bit-pattern fingerprint: push and pull produce
            // bit-identical floats by construction, so the checksum is
            // stable across directions and thread counts.
            const auto &s = pagerank->scores();
            std::vector<uint32_t> w(s.size());
            std::memcpy(w.data(), s.data(), s.size() * sizeof(float));
            resp.resultChecksum = fnv1a(w.data(), w.size());
        } else if (spmv) {
            const auto &yv = spmv->result();
            std::vector<uint32_t> w(yv.size() * 2);
            std::memcpy(w.data(), yv.data(),
                        yv.size() * sizeof(double));
            resp.resultChecksum = fnv1a(w.data(), w.size());
        }
    }
    return resp;
}

void
BatchServer::dispatchLoop()
{
    std::unique_ptr<Job> job;
    uint64_t tenant = 0;
    while (queues_.pop(&job, &tenant)) {
        ResponseFrame resp;
        if (stopping_.load(std::memory_order_acquire)) {
            // Graceful shutdown: the backlog is shed with the same
            // typed fast-fail an admission reject gets, never dropped.
            resp.code = ErrorCode::kUnavailable;
            resp.message = "server shut down before the request ran";
        } else if (job->deadline.armed() && job->deadline.expired()) {
            // Doomed work is shed at dispatch, not run to certain
            // failure: the client has already given up.
            resp.code = ErrorCode::kDeadlineExceeded;
            resp.message = "deadline expired while queued";
        } else {
            resp = execute(*job);
        }
        finish(std::move(job), std::move(resp));
        if (MetricsRegistry *reg = MetricsRegistry::active())
            reg->gauge("server.queue_depth")
                ->set(static_cast<int64_t>(queues_.size()));
    }
}

void
BatchServer::recover()
{
    const auto t0 = std::chrono::steady_clock::now();
    recovery_.ran = true;
    const DurabilityConfig &dc = cfg_.durability;

    Deadline dl;
    if (dc.recoveryDeadline.count() > 0)
        dl = Deadline::after(dc.recoveryDeadline);
    MemoryBudget budget(dc.recoveryBudgetBytes);

    // 1. Newest valid checkpoint (with fallback to the older retained
    // one). A directory with checkpoints but no valid one is a typed
    // refusal, not a silent cold start.
    Checkpoint ck;
    bool haveCkpt = false;
    std::string ckptPath;
    if (Status st = loadNewestValidCheckpoint(
            dc.walDir, &ck, &haveCkpt, dc.recoveryBudgetBytes, &ckptPath);
        !st.ok())
        throw Error(st.code(), "recovery refused: " + st.message());

    uint64_t minCover = 0, maxCover = 0;
    if (haveCkpt) {
        recovery_.checkpointLoaded = true;
        recovery_.checkpointLsn = ck.lsn;
        recovery_.checkpointTenants = ck.tenants.size();
        minCover = ck.lsn;
        for (TenantCheckpoint &tc : ck.tenants) {
            minCover = std::min(minCover, tc.coveredLsn);
            maxCover = std::max(maxCover, tc.coveredLsn);
            budget.charge(tc.csr.numEdges() * sizeof(NodeId) +
                          (tc.csr.numNodes() + 1) * sizeof(EdgeOffset));
            auto state = tenantGraph(tc.tenantId, /*create=*/true);
            state->numIndices = tc.numIndices;
            if (tc.csr.numNodes() != tc.numIndices)
                throw Error(ErrorCode::kCorruptFile,
                            "recovery refused: checkpoint tenant " +
                                std::to_string(tc.tenantId) + " CSR has " +
                                std::to_string(tc.csr.numNodes()) +
                                " nodes but claims " +
                                std::to_string(tc.numIndices) +
                                " indices");
            // DynamicGraph(CsrGraph) re-verifies the merge invariants;
            // then the fingerprint ties the adopted graph to what the
            // checkpointing server actually held.
            state->graph =
                std::make_unique<DynamicGraph>(std::move(tc.csr));
            const uint64_t fp = state->graph->snapshotFingerprint();
            if (fp != tc.fingerprint)
                throw Error(ErrorCode::kDataLoss,
                            "recovery refused: checkpoint tenant " +
                                std::to_string(tc.tenantId) +
                                " fingerprint mismatch (stored " +
                                std::to_string(tc.fingerprint) +
                                ", recovered " + std::to_string(fp) +
                                ")");
            state->lastLsn = tc.coveredLsn;
        }
    }

    // 2. The WAL, full-file verified. repair_torn_tail=true: the torn
    // bytes a crash left are physically truncated so the reopened
    // writer continues from a clean prefix.
    WalReadResult rr;
    if (Status st = readWal(dc.walDir, &rr, /*repair_torn_tail=*/true);
        !st.ok())
        throw Error(st.code(), "recovery refused: " + st.message());
    recovery_.walRecords = rr.records.size();
    recovery_.tornTailBytes = rr.tornTailBytes;

    // 3. Continuity: replay needs every record past the oldest
    // per-tenant cover. A WAL that starts later than that lost
    // acknowledged state — refuse, never serve a gap.
    const uint64_t firstNeeded = minCover + 1;
    if (!rr.records.empty() && rr.records.front().lsn > firstNeeded)
        throw Error(ErrorCode::kDataLoss,
                    "recovery refused: WAL starts at lsn " +
                        std::to_string(rr.records.front().lsn) +
                        " but replay needs lsn " +
                        std::to_string(firstNeeded) +
                        " — acknowledged mutations are unrecoverable");

    nextLsn_.store(std::max(
        maxCover, rr.records.empty() ? 0 : rr.records.back().lsn));

    // 4. Replay the uncovered suffix through the normal PB-binned
    // mutation path, certifying every record against its logged
    // post-state stamps. A shadow incremental-degree state per tenant
    // is updated on every record and certified once at the end against
    // a trusted full recompute (DifferentialOracle) — the same
    // incremental-vs-full discipline the live mutate path applies.
    std::map<uint64_t, std::unique_ptr<IncrementalDegreeCount>> shadow;
    {
        std::lock_guard<std::mutex> lk(tenantsMu_);
        for (auto &[tenant, state] : tenants_)
            if (state->graph)
                shadow[tenant] = std::make_unique<IncrementalDegreeCount>(
                    *state->graph);
    }
    PhaseRecorder rec;
    for (WalRecord &wrec : rr.records) {
        if (dl.armed() && dl.expired())
            throw Error(ErrorCode::kDeadlineExceeded,
                        "recovery refused: replay deadline expired at "
                        "lsn " +
                            std::to_string(wrec.lsn));
        budget.charge(wrec.payload.size());

        RequestFrame rreq;
        if (Status st = decodeRequest(wrec.payload.data(),
                                      wrec.payload.size(), &rreq);
            !st.ok())
            throw Error(ErrorCode::kCorruptFile,
                        "recovery refused: WAL record at lsn " +
                            std::to_string(wrec.lsn) +
                            " does not decode as a request frame: " +
                            st.message());
        if (rreq.op != RequestOp::kMutate)
            throw Error(ErrorCode::kCorruptFile,
                        "recovery refused: WAL record at lsn " +
                            std::to_string(wrec.lsn) +
                            " is not a kMutate frame");

        auto state = tenantGraph(rreq.tenantId, /*create=*/true);
        if (state->graph == nullptr) {
            state->numIndices = rreq.numIndices;
            state->graph = std::make_unique<DynamicGraph>(
                static_cast<NodeId>(rreq.numIndices));
            shadow[rreq.tenantId] =
                std::make_unique<IncrementalDegreeCount>(*state->graph);
        } else if (state->numIndices != rreq.numIndices) {
            throw Error(ErrorCode::kDataLoss,
                        "recovery refused: WAL record at lsn " +
                            std::to_string(wrec.lsn) + " addresses " +
                            std::to_string(rreq.numIndices) +
                            " indices but tenant " +
                            std::to_string(rreq.tenantId) + " has " +
                            std::to_string(state->numIndices));
        }
        if (wrec.lsn <= state->lastLsn) {
            // Already folded into the checkpoint.
            ++recovery_.skippedRecords;
            continue;
        }

        MutationBatch batch;
        batch.ops.reserve(rreq.numUpdates());
        for (size_t i = 0; i + 1 < rreq.payload.size(); i += 2) {
            const uint32_t sw = rreq.payload[i];
            batch.ops.push_back(MutationBatch::Op{
                sw & ~kMutateDeleteBit, rreq.payload[i + 1],
                (sw & kMutateDeleteBit) != 0});
        }

        PbEngineConfig ecfg;
        ecfg.kind = rreq.engine;
        ecfg.wcLines = rreq.wcLines;
        ecfg.skewAdaptive = rreq.skewAdaptive;
        BatchResult r = state->graph->applyBatchParallel(
            pool_, rec, batch, rreq.bins, ecfg);
        if (!state->graph->health().ok())
            throw Error(ErrorCode::kDataLoss,
                        "recovery refused: replay of lsn " +
                            std::to_string(wrec.lsn) +
                            " failed conservation: " +
                            state->graph->health().message());
        if (!r.conserved(batch.size()))
            throw Error(ErrorCode::kDataLoss,
                        "recovery refused: replay of lsn " +
                            std::to_string(wrec.lsn) +
                            " does not close its op accounting");

        // The record's own certification: the replayed graph must
        // reproduce exactly the state the original server fingerprinted
        // before acknowledging this batch.
        if (state->graph->numEdges() != wrec.postLiveEdges ||
            state->graph->snapshotFingerprint() != wrec.postFingerprint)
            throw Error(ErrorCode::kDataLoss,
                        "recovery refused: replayed state diverges from "
                        "the acknowledged state at lsn " +
                            std::to_string(wrec.lsn) +
                            " — refusing to serve it");

        if (auto it = shadow.find(rreq.tenantId); it != shadow.end())
            it->second->update(r, *state->graph);
        state->lastLsn = wrec.lsn;
        ++recovery_.replayedBatches;
        recovery_.replayedOps += batch.size();
    }

    // 5. End-to-end differential certification of the replay path
    // itself, then fresh serving-side incremental state.
    {
        std::lock_guard<std::mutex> lk(tenantsMu_);
        for (auto &[tenant, state] : tenants_) {
            if (!state->graph)
                continue;
            if (auto it = shadow.find(tenant); it != shadow.end()) {
                if (auto d = DifferentialOracle::firstDivergence(
                        it->second->degrees(),
                        IncrementalDegreeCount::fullRecompute(
                            *state->graph),
                        "recovery shadow degrees"))
                    throw Error(ErrorCode::kDataLoss,
                                "recovery refused: incremental replay "
                                "diverged from full recompute for "
                                "tenant " +
                                    std::to_string(tenant) + ": " +
                                    d->detail);
            }
            state->degrees = std::make_unique<IncrementalDegreeCount>(
                *state->graph);
            state->pagerank =
                std::make_unique<DeltaPagerank>(*state->graph);
        }
    }

    {
        std::lock_guard<std::mutex> ck_lk(ckptMu_);
        prevCheckpointCover_ = minCover;
    }

    recovery_.durationMicros = microsSince(t0);
    if (MetricsCounter *c =
            metricsCounter("durability.recovery.replayed_batches"))
        c->add(recovery_.replayedBatches);
    if (MetricsCounter *c =
            metricsCounter("durability.recovery.skipped_records"))
        c->add(recovery_.skippedRecords);
    if (MetricsGauge *g =
            metricsGauge("durability.recovery.duration_micros"))
        g->set(static_cast<int64_t>(recovery_.durationMicros));
}

Status
BatchServer::checkpointNow()
{
    if (!cfg_.durability.enabled())
        return Status(ErrorCode::kFailedPrecondition,
                      "durability is disabled (no --wal-dir)");
    std::lock_guard<std::mutex> ck_lk(ckptMu_);
    TraceSpan sp("server.checkpoint", "server");

    Checkpoint ck;
    ck.lsn = nextLsn_.load(std::memory_order_relaxed);

    std::vector<std::pair<uint64_t, std::shared_ptr<TenantGraph>>> snap;
    {
        std::lock_guard<std::mutex> lk(tenantsMu_);
        for (auto &kv : tenants_)
            snap.emplace_back(kv.first, kv.second);
    }
    for (auto &[tenant, state] : snap) {
        // Copy under the tenant lock (mutations hold it across WAL
        // append + commit, so graph and lastLsn are consistent); the
        // expensive snapshot/fingerprint run on the copy, unlocked.
        std::unique_ptr<DynamicGraph> copy;
        uint64_t covered = 0, indices = 0;
        {
            std::lock_guard<std::mutex> lk(state->mu);
            if (!state->graph)
                continue;
            copy = std::make_unique<DynamicGraph>(*state->graph);
            covered = state->lastLsn;
            indices = state->numIndices;
        }
        TenantCheckpoint tc;
        tc.tenantId = tenant;
        tc.coveredLsn = covered;
        tc.numIndices = indices;
        tc.csr = copy->snapshotCsr();
        tc.fingerprint = copy->snapshotFingerprint();
        // Concurrent mutations may have advanced past the lsn frontier
        // read above; the capture lsn only needs to dominate every
        // per-tenant cover.
        ck.lsn = std::max(ck.lsn, covered);
        ck.tenants.push_back(std::move(tc));
    }

    std::string path;
    if (Status st = writeCheckpoint(cfg_.durability.walDir, ck, &path);
        !st.ok())
        return st;

    // Rotate so the pre-checkpoint segments become fully covered and
    // deletable once the NEXT checkpoint lands.
    {
        std::lock_guard<std::mutex> wl(walMu_);
        if (wal_) {
            if (Status st = wal_->rotate(
                    nextLsn_.load(std::memory_order_relaxed) + 1);
                !st.ok())
                return Status(st.code(),
                              "checkpoint written but WAL rotation "
                              "failed: " +
                                  st.message());
        }
    }

    uint64_t cover = ck.lsn;
    for (const TenantCheckpoint &tc : ck.tenants)
        cover = std::min(cover, tc.coveredLsn);
    if (Status st = pruneCheckpoints(cfg_.durability.walDir, 2); !st.ok())
        return st;
    // Truncate only what the PREVIOUS retained checkpoint covers: if
    // the one just written turns out corrupt on disk, the older
    // checkpoint + the retained WAL suffix still reconstruct everything.
    if (Status st =
            truncateWalBehind(cfg_.durability.walDir, prevCheckpointCover_);
        !st.ok())
        return st;
    prevCheckpointCover_ = cover;

    if (MetricsGauge *g = metricsGauge("durability.ckpt.cover_lsn"))
        g->set(static_cast<int64_t>(ck.lsn));
    return Status::Ok();
}

void
BatchServer::checkpointLoop()
{
    std::unique_lock<std::mutex> lk(ckptCvMu_);
    while (!ckptStop_) {
        ckptCv_.wait_for(lk, cfg_.durability.checkpointInterval,
                         [this] { return ckptStop_; });
        if (ckptStop_)
            break;
        lk.unlock();
        if (Status st = checkpointNow(); !st.ok()) {
            warn("background checkpoint failed (WAL remains "
                 "authoritative): " +
                 st.toString());
            if (MetricsCounter *c =
                    metricsCounter("durability.ckpt.failures"))
                c->inc();
        }
        lk.lock();
    }
}

ServerStats
BatchServer::stats() const
{
    ServerStats s;
    s.received = received_.load(std::memory_order_relaxed);
    s.rejectedInvalid = rejectedInvalid_.load(std::memory_order_relaxed);
    s.rejectedOverload =
        rejectedOverload_.load(std::memory_order_relaxed);
    s.rejectedQuota = rejectedQuota_.load(std::memory_order_relaxed);
    s.admitted = admitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.deadlineExceeded =
        deadlineExceeded_.load(std::memory_order_relaxed);
    s.mutateBatches = mutateBatches_.load(std::memory_order_relaxed);
    s.mutateOps = mutateOps_.load(std::memory_order_relaxed);
    s.mutateApplied = mutateApplied_.load(std::memory_order_relaxed);
    s.mutateDeduped = mutateDeduped_.load(std::memory_order_relaxed);
    s.mutateRejected = mutateRejected_.load(std::memory_order_relaxed);
    s.compactions = compactions_.load(std::memory_order_relaxed);
    s.recertifications =
        recertifications_.load(std::memory_order_relaxed);
    return s;
}

} // namespace cobra
