/**
 * @file
 * ServerClient: the calling side of the batch protocol.
 *
 * One call() = connect, send one request frame, wait for one response
 * frame — with the three behaviours a client of an overloadable
 * service must have:
 *
 *  - a socket timeout (SO_RCVTIMEO/SO_SNDTIMEO), so a hung server
 *    becomes a typed kDeadlineExceeded instead of a hung client;
 *  - bounded retry with jittered exponential backoff, driven by the
 *    same RetryPolicy schedule the server's supervisor uses — but
 *    *only* on kUnavailable responses and transport failures, the two
 *    cases where the server explicitly said (or implied) "later".
 *    A kResourceExhausted quota reject, an invalid-argument reject,
 *    or a completed failure is final: retrying cannot change it;
 *  - jitter derived from the request id, so a thousand clients
 *    rejected together do not return together (the thundering-herd
 *    half of the backpressure contract).
 */

#ifndef COBRA_SERVER_CLIENT_H
#define COBRA_SERVER_CLIENT_H

#include <chrono>
#include <cstdint>
#include <string>

#include "src/resilience/retry_policy.h"
#include "src/server/frame.h"
#include "src/util/error.h"

namespace cobra {

/** Client knobs. */
struct ClientConfig
{
    std::string socketPath;

    /** Per-attempt socket send/receive timeout. */
    std::chrono::milliseconds timeout{30000};

    /** Attempt + backoff schedule for retryable outcomes. */
    RetryPolicy retry;
};

/** Connect-per-call client for the batch server socket. */
class ServerClient
{
  public:
    explicit ServerClient(ClientConfig cfg) : cfg_(std::move(cfg)) {}

    /**
     * Submit @p req and wait for its response. Returns the transport
     * verdict: Ok() means @p out holds the server's response (whose
     * own .code may still be a typed failure); !ok means no response
     * was obtained within the retry budget.
     */
    Status call(const RequestFrame &req, ResponseFrame *out);

    /** Attempts made by the most recent call() (for tests/CLI). */
    uint32_t lastAttempts() const { return last_attempts_; }

  private:
    Status callOnce(const std::vector<uint8_t> &encoded,
                    ResponseFrame *out);

    ClientConfig cfg_;
    uint32_t last_attempts_ = 0;
};

} // namespace cobra

#endif // COBRA_SERVER_CLIENT_H
