#include "src/server/frame.h"

#include <cstring>

#include "src/check/fault_injector.h"
#include "src/pb/bin_range.h"

namespace cobra {

namespace {

/** Little-endian byte-at-a-time writer (alignment/endian agnostic). */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<uint8_t> &buf) : buf_(buf) {}

    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        u8(static_cast<uint8_t>(v));
        u8(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }

    void
    u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }

  private:
    std::vector<uint8_t> &buf_;
};

/**
 * Bounds-checked little-endian reader. Every read checks remaining
 * length first; a short frame becomes a Status at the call site (the
 * reader itself just reports truncation via ok()).
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t len) : p_(data), end_(data + len)
    {
    }

    bool ok() const { return ok_; }
    size_t remaining() const { return static_cast<size_t>(end_ - p_); }

    uint8_t
    u8()
    {
        if (remaining() < 1) {
            ok_ = false;
            return 0;
        }
        return *p_++;
    }

    uint16_t
    u16()
    {
        uint16_t lo = u8(), hi = u8();
        return static_cast<uint16_t>(lo | (hi << 8));
    }

    uint32_t
    u32()
    {
        uint32_t lo = u16(), hi = u16();
        return lo | (hi << 16);
    }

    uint64_t
    u64()
    {
        uint64_t lo = u32(), hi = u32();
        return lo | (hi << 32);
    }

  private:
    const uint8_t *p_;
    const uint8_t *end_;
    bool ok_ = true;
};

Status
malformed(const std::string &what)
{
    return Status(ErrorCode::kCorruptFile, "malformed frame: " + what);
}

} // namespace

Status
validateRequest(const RequestFrame &req)
{
    if (static_cast<uint8_t>(req.kernel) <
            static_cast<uint8_t>(ServerKernel::kDegreeCount) ||
        static_cast<uint8_t>(req.kernel) >
            static_cast<uint8_t>(ServerKernel::kSpmv))
        return Status(ErrorCode::kInvalidArgument,
                      "unknown kernel id " +
                          std::to_string(static_cast<unsigned>(req.kernel)));
    if (static_cast<uint8_t>(req.engine) >
        static_cast<uint8_t>(PbEngineKind::kTwoPass))
        return Status(ErrorCode::kInvalidArgument,
                      "unknown engine id " +
                          std::to_string(static_cast<unsigned>(req.engine)));
    if (Status s = validatePbBinCount(req.bins); !s.ok())
        return s;
    if (req.bins > kMaxRequestBins)
        return Status(ErrorCode::kInvalidArgument,
                      "bin count " + std::to_string(req.bins) +
                          " exceeds the request cap of " +
                          std::to_string(kMaxRequestBins));
    if (req.wcLines < 1 || req.wcLines > kMaxWcLines)
        return Status(ErrorCode::kInvalidArgument,
                      "wcLines " + std::to_string(req.wcLines) +
                          " outside [1, " + std::to_string(kMaxWcLines) +
                          "]");
    if (req.deadlineMs > kMaxDeadlineMs)
        return Status(ErrorCode::kInvalidArgument,
                      "deadline " + std::to_string(req.deadlineMs) +
                          " ms exceeds the cap of " +
                          std::to_string(kMaxDeadlineMs) + " ms");
    if (req.injectSite >
        static_cast<uint32_t>(FaultSite::kCkptRenameFail))
        return Status(ErrorCode::kInvalidArgument,
                      "unknown fault site id " +
                          std::to_string(req.injectSite));
    if (static_cast<uint8_t>(req.op) >
        static_cast<uint8_t>(RequestOp::kSnapshot))
        return Status(ErrorCode::kInvalidArgument,
                      "unknown request op " +
                          std::to_string(static_cast<unsigned>(req.op)));
    if (req.numIndices == 0 || req.numIndices > kMaxRequestIndices)
        return Status(ErrorCode::kInvalidArgument,
                      "numIndices " + std::to_string(req.numIndices) +
                          " outside [1, " +
                          std::to_string(kMaxRequestIndices) + "]");

    // Mutable-graph ops are served only for the kernels with an
    // incremental maintainer (degree counts and Pagerank scores).
    if (req.op != RequestOp::kRun &&
        req.kernel != ServerKernel::kDegreeCount &&
        req.kernel != ServerKernel::kPagerank)
        return Status(ErrorCode::kInvalidArgument,
                      std::string(to_string(req.op)) +
                          " requests support only the degree and "
                          "pagerank kernels; got " +
                          to_string(req.kernel));

    if (req.op == RequestOp::kSnapshot) {
        if (!req.payload.empty())
            return Status(ErrorCode::kInvalidArgument,
                          "snapshot requests carry no payload; got " +
                              std::to_string(req.payload.size()) +
                              " words");
        return Status::Ok();
    }

    if (req.payload.empty() || req.payload.size() % 2 != 0)
        return Status(ErrorCode::kInvalidArgument,
                      "payload must be a non-empty sequence of "
                      "(src, dst) pairs; got " +
                          std::to_string(req.payload.size()) + " words");
    if (req.payload.size() > kMaxPayloadWords)
        return Status(ErrorCode::kInvalidArgument,
                      "payload of " + std::to_string(req.payload.size()) +
                          " words exceeds the frame cap");
    // The index-bounds scan: the kernels index arrays of numIndices
    // entries with these words, so an out-of-range word here is the
    // difference between a typed reject and a heap overrun. For
    // mutation batches the src word (even position) may carry the
    // delete bit, which is masked off before the bound check; the dst
    // word must be a plain vertex id.
    const bool mutate = req.op == RequestOp::kMutate;
    for (size_t i = 0; i < req.payload.size(); ++i) {
        uint32_t w = req.payload[i];
        if (mutate && i % 2 == 0)
            w &= ~kMutateDeleteBit;
        else if (mutate && (w & kMutateDeleteBit) != 0)
            return Status(ErrorCode::kInvalidArgument,
                          "payload word " + std::to_string(i) +
                              " (a dst) carries the delete bit");
        if (w >= req.numIndices)
            return Status(ErrorCode::kOutOfRange,
                          "payload word " + std::to_string(i) + " (" +
                              std::to_string(w) + ") >= numIndices (" +
                              std::to_string(req.numIndices) + ")");
    }
    return Status::Ok();
}

uint64_t
encodedRequestBytes(const RequestFrame &req)
{
    return kRequestHeaderBytes + uint64_t{req.payload.size()} * 4;
}

std::vector<uint8_t>
encodeRequest(const RequestFrame &req)
{
    if (Status s = validateRequest(req); !s.ok())
        throw Error(ErrorCode::kInvalidArgument,
                    "refusing to encode an invalid request: " +
                        s.message());
    std::vector<uint8_t> buf;
    buf.reserve(encodedRequestBytes(req));
    ByteWriter w(buf);
    w.u32(kRequestMagic);
    w.u16(kWireVersion);
    w.u16(0);
    w.u64(req.tenantId);
    w.u64(req.requestId);
    w.u8(static_cast<uint8_t>(req.kernel));
    w.u8(static_cast<uint8_t>(req.engine));
    w.u8(req.skewAdaptive ? 1 : 0);
    w.u8(static_cast<uint8_t>(req.op));
    w.u32(req.bins);
    w.u32(req.wcLines);
    w.u32(req.deadlineMs);
    w.u32(req.injectSite);
    w.u64(req.injectFireAt);
    w.u64(req.injectSeed);
    w.u64(req.numIndices);
    w.u64(req.payload.size());
    for (uint32_t v : req.payload)
        w.u32(v);
    return buf;
}

Status
decodeRequest(const uint8_t *data, size_t len, RequestFrame *out)
{
    if (len > kMaxFrameBytes)
        return malformed("frame of " + std::to_string(len) +
                         " bytes exceeds the cap of " +
                         std::to_string(kMaxFrameBytes));
    if (len < kRequestHeaderBytes)
        return malformed("request of " + std::to_string(len) +
                         " bytes is shorter than the " +
                         std::to_string(kRequestHeaderBytes) +
                         "-byte header");
    ByteReader r(data, len);
    if (r.u32() != kRequestMagic)
        return malformed("bad request magic");
    if (uint16_t v = r.u16(); v != kWireVersion)
        return malformed("unsupported wire version " + std::to_string(v));
    if (r.u16() != 0)
        return malformed("nonzero reserved field");

    RequestFrame req;
    req.tenantId = r.u64();
    req.requestId = r.u64();
    req.kernel = static_cast<ServerKernel>(r.u8());
    req.engine = static_cast<PbEngineKind>(r.u8());
    const uint8_t flags = r.u8();
    if ((flags & ~uint8_t{1}) != 0)
        return malformed("unknown flag bits");
    req.skewAdaptive = (flags & 1) != 0;
    const uint8_t op = r.u8();
    if (op > static_cast<uint8_t>(RequestOp::kSnapshot))
        return malformed("unknown request op " + std::to_string(op));
    req.op = static_cast<RequestOp>(op);
    req.bins = r.u32();
    req.wcLines = r.u32();
    req.deadlineMs = r.u32();
    req.injectSite = r.u32();
    req.injectFireAt = r.u64();
    req.injectSeed = r.u64();
    req.numIndices = r.u64();
    const uint64_t payload_words = r.u64();

    // Length cross-check before the payload is even touched: the
    // claimed word count must both fit the cap and exactly account for
    // the bytes that follow (4 * words cannot overflow after the cap
    // check — kMaxPayloadWords * 4 < 2^63).
    if (payload_words > kMaxPayloadWords)
        return malformed("claimed payload of " +
                         std::to_string(payload_words) +
                         " words exceeds the frame cap");
    const uint64_t expect = kRequestHeaderBytes + payload_words * 4;
    if (uint64_t{len} != expect)
        return malformed("frame length " + std::to_string(len) +
                         " does not match header + payload (" +
                         std::to_string(expect) + ")");
    req.payload.resize(static_cast<size_t>(payload_words));
    for (uint64_t i = 0; i < payload_words; ++i)
        req.payload[static_cast<size_t>(i)] = r.u32();
    if (!r.ok() || r.remaining() != 0)
        return malformed("truncated or over-long request body");

    if (Status s = validateRequest(req); !s.ok())
        return s;
    *out = std::move(req);
    return Status::Ok();
}

std::vector<uint8_t>
encodeResponse(const ResponseFrame &resp)
{
    std::string msg = resp.message;
    if (msg.size() > kMaxMsgBytes)
        msg.resize(kMaxMsgBytes);
    std::vector<uint8_t> buf;
    buf.reserve(kResponseHeaderBytes + msg.size());
    ByteWriter w(buf);
    w.u32(kResponseMagic);
    w.u16(kWireVersion);
    w.u16(0);
    w.u64(resp.tenantId);
    w.u64(resp.requestId);
    w.u32(static_cast<uint32_t>(resp.code));
    w.u32(resp.attempts);
    w.u32(resp.retries);
    w.u32(resp.degradations);
    w.u8(resp.usedBaseline ? 1 : 0);
    w.u8(static_cast<uint8_t>(resp.finalEngine));
    w.u16(0);
    w.u32(resp.finalBins);
    w.u64(resp.resultChecksum);
    w.u64(resp.serverMicros);
    w.u64(resp.queueMicros);
    w.u32(static_cast<uint32_t>(msg.size()));
    for (char c : msg)
        w.u8(static_cast<uint8_t>(c));
    return buf;
}

Status
decodeResponse(const uint8_t *data, size_t len, ResponseFrame *out)
{
    if (len > kMaxFrameBytes)
        return malformed("frame exceeds the cap");
    if (len < kResponseHeaderBytes)
        return malformed("response of " + std::to_string(len) +
                         " bytes is shorter than the " +
                         std::to_string(kResponseHeaderBytes) +
                         "-byte header");
    ByteReader r(data, len);
    if (r.u32() != kResponseMagic)
        return malformed("bad response magic");
    if (uint16_t v = r.u16(); v != kWireVersion)
        return malformed("unsupported wire version " + std::to_string(v));
    if (r.u16() != 0)
        return malformed("nonzero reserved field");

    ResponseFrame resp;
    resp.tenantId = r.u64();
    resp.requestId = r.u64();
    const uint32_t code = r.u32();
    if (code > static_cast<uint32_t>(ErrorCode::kUnavailable))
        return malformed("unknown error code " + std::to_string(code));
    resp.code = static_cast<ErrorCode>(code);
    resp.attempts = r.u32();
    resp.retries = r.u32();
    resp.degradations = r.u32();
    resp.usedBaseline = r.u8() != 0;
    const uint8_t engine = r.u8();
    if (engine > static_cast<uint8_t>(PbEngineKind::kTwoPass))
        return malformed("unknown engine id " + std::to_string(engine));
    resp.finalEngine = static_cast<PbEngineKind>(engine);
    if (r.u16() != 0)
        return malformed("nonzero reserved field");
    resp.finalBins = r.u32();
    resp.resultChecksum = r.u64();
    resp.serverMicros = r.u64();
    resp.queueMicros = r.u64();
    const uint32_t msg_bytes = r.u32();
    if (msg_bytes > kMaxMsgBytes)
        return malformed("message of " + std::to_string(msg_bytes) +
                         " bytes exceeds the cap");
    if (uint64_t{len} != kResponseHeaderBytes + uint64_t{msg_bytes})
        return malformed("frame length does not match header + message");
    resp.message.resize(msg_bytes);
    for (uint32_t i = 0; i < msg_bytes; ++i)
        resp.message[i] = static_cast<char>(r.u8());
    if (!r.ok() || r.remaining() != 0)
        return malformed("truncated or over-long response body");
    *out = std::move(resp);
    return Status::Ok();
}

} // namespace cobra
