/**
 * @file
 * BatchServer: the long-lived multi-tenant service in front of the
 * supervised PB runtime.
 *
 * Request lifecycle (DESIGN.md section 13's state machine):
 *
 *   received -> (validate, admit) -> admitted -> queued -> running
 *                     |    |                        |         |
 *                     v    v                        v         v
 *                 invalid  rejected              shed     {completed,
 *                (typed)   (typed, fast)                   failed}
 *
 * Everything before "admitted" is synchronous inside submit(): a
 * malformed or over-capacity request costs the caller one validation
 * pass and an O(1) admission check — it never touches a queue, a
 * worker, or the allocator. Everything after is asynchronous: the
 * returned future resolves when the request reaches a terminal state,
 * and *every* admitted request reaches one (the chaos test's
 * conservation invariant: admitted == completed + failed + shed).
 *
 * Execution: dispatcher threads pop requests in WRR order and drive
 * each through its own RunSupervisor on the *shared* ThreadPool —
 * concurrency between tenants comes from ThreadPool::Group (each
 * request's shards, failures, and cancellation are scoped to its own
 * group) rather than from per-request pools. A request's deadline
 * rides the whole pipeline: expired while queued -> shed without
 * running; running -> SupervisorConfig::overallDeadline clamps every
 * attempt's watchdog and stops the retry ladder when the budget is
 * spent. A request-carried fault plan (RequestFrame::injectSite) is
 * installed as a FaultInjector scoped to that request's dispatcher
 * thread and inherited only by that request's pool tasks — one
 * tenant's chaos never perturbs a neighbour.
 *
 * Results are oracle-certified before being reported ok (the
 * supervisor re-verifies every attempt against the kernel's serial
 * reference), and the response carries an FNV-1a fingerprint of the
 * output so clients can cross-check replicas.
 *
 * Mutable graphs: a kMutate request addresses a per-tenant
 * DynamicGraph instead of a one-shot kernel. Batches are applied
 * trial-commit (the batch runs against a copy; a conservation failure
 * leaves the served graph untouched and answers typed), the
 * incrementally maintained degree/Pagerank result is re-certified
 * against a full recompute after every batch
 * (DifferentialOracle::firstDivergence), and the op-level books close
 * under their own conservation identity (ServerStats::conserved).
 */

#ifndef COBRA_SERVER_BATCH_SERVER_H
#define COBRA_SERVER_BATCH_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "src/durability/durability.h"
#include "src/graph/dynamic_graph.h"
#include "src/kernels/incremental.h"
#include "src/resilience/cancel.h"
#include "src/server/admission.h"
#include "src/server/frame.h"
#include "src/server/tenant_queue.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace cobra {

/** Server-wide knobs. */
struct ServerConfig
{
    /** Concurrent supervised runs (dispatcher threads). */
    size_t dispatchThreads = 2;

    AdmissionConfig admission;

    /** WRR weights per tenant id; unlisted tenants weigh 1. */
    std::map<uint64_t, uint32_t> tenantWeights;

    /**
     * Per-attempt watchdog for requests that carry no deadline of
     * their own (a server must never run unbounded work for a client
     * that asked for none). 0 disables.
     */
    std::chrono::milliseconds defaultAttemptDeadline{30000};

    /** Supervisor retry ladder length per request. */
    uint32_t retryAttempts = 3;

    /** Floor for the supervisor's bin-halving degradation. */
    uint32_t minBins = 16;

    /** Allow the serial-reference last rung. */
    bool allowBaselineFallback = true;

    /** Emit per-tenant metrics (server.tenant.<id>.*). */
    bool perTenantMetrics = true;

    /**
     * Durability layer (DESIGN.md §16). With walDir set, every kMutate
     * batch is WAL-logged before its commit is acknowledged, the
     * tenant graphs are periodically checkpointed, and the constructor
     * runs crash recovery: newest valid checkpoint + WAL-suffix replay,
     * certified record-by-record against the logged fingerprints. A
     * recovery that cannot reproduce the acknowledged state *throws* a
     * typed Error from the constructor — the server refuses to start
     * rather than serve divergent state.
     */
    DurabilityConfig durability;
};

/** Exact lifecycle accounting (all monotonic; see conservation note). */
struct ServerStats
{
    uint64_t received = 0;
    uint64_t rejectedInvalid = 0;  ///< failed validation; never admitted
    uint64_t rejectedOverload = 0; ///< kUnavailable at admission
    uint64_t rejectedQuota = 0;    ///< kResourceExhausted at admission
    uint64_t admitted = 0;
    uint64_t completed = 0; ///< ran, oracle-certified ok
    uint64_t failed = 0;    ///< ran, terminal failure
    uint64_t shed = 0;      ///< admitted but never ran
    uint64_t deadlineExceeded = 0; ///< terminal code was kDeadlineExceeded

    // Mutation-path accounting (kMutate requests). Every op that
    // reaches a dispatcher is classified exactly once: applied
    // (changed the edge set), deduped (insert of a live edge),
    // rejected (delete of a non-live edge, or the whole batch bounced
    // before commit — precondition, deadline, data-loss).
    uint64_t mutateBatches = 0; ///< kMutate requests that reached execute
    uint64_t mutateOps = 0;
    uint64_t mutateApplied = 0;
    uint64_t mutateDeduped = 0;
    uint64_t mutateRejected = 0;
    uint64_t compactions = 0;   ///< threshold compactions that committed
    uint64_t recertifications = 0; ///< incremental results certified ok

    /** admitted == completed + failed + shed once the server drained. */
    bool
    conserved() const
    {
        return admitted == completed + failed + shed &&
               received == admitted + rejectedInvalid + rejectedOverload +
                               rejectedQuota &&
               mutateOps ==
                   mutateApplied + mutateDeduped + mutateRejected;
    }
};

/** The in-process server core (the socket layer wraps this). */
class BatchServer
{
  public:
    /**
     * @param pool shared kernel pool; the server does not own it, and
     *        other subsystems may keep using it concurrently.
     */
    BatchServer(ServerConfig cfg, ThreadPool &pool);

    /** Sheds whatever is still queued, then joins the dispatchers. */
    ~BatchServer();

    BatchServer(const BatchServer &) = delete;
    BatchServer &operator=(const BatchServer &) = delete;

    /**
     * Submit one request. Never throws and never blocks on kernel
     * work: validation + admission happen inline (a rejected request
     * returns an already-resolved future with the typed code), then
     * the request waits its WRR turn. The future always resolves.
     */
    std::future<ResponseFrame> submit(RequestFrame req);

    /** submit() + wait — the convenience path for tests and the CLI. */
    ResponseFrame
    call(RequestFrame req)
    {
        return submit(std::move(req)).get();
    }

    /**
     * Stop accepting (submit answers kUnavailable), shed the backlog,
     * finish in-flight runs, join dispatchers. Idempotent; the dtor
     * calls it.
     */
    void stop();

    ServerStats stats() const;

    size_t queueDepth() const { return queues_.size(); }

    /** What startup recovery found/replayed (ran=false when durability
     * is disabled). */
    const RecoveryReport &recovery() const { return recovery_; }

    /**
     * Write a checkpoint of every tenant graph now: capture the LSN
     * frontier, copy each graph under its own mutex, write tmp + fsync
     * + rename, rotate the WAL, prune to the newest two checkpoints,
     * and truncate WAL segments the *previous* retained checkpoint
     * already covers (so even a corrupt newest checkpoint leaves the
     * older one + WAL sufficient). Typed error when durability is
     * disabled or the write fails; in-flight mutations are unaffected
     * either way.
     */
    Status checkpointNow();

  private:
    struct Job
    {
        RequestFrame req;
        uint64_t costBytes = 0;
        Deadline deadline; ///< armed iff req.deadlineMs != 0
        std::chrono::steady_clock::time_point admittedAt;
        std::promise<ResponseFrame> promise;
    };

    /**
     * Per-tenant mutable state for the kMutate/kSnapshot ops: the
     * graph plus the incrementally maintained kernel results. mu
     * serializes batches for one tenant (the trial-commit and the
     * incremental state must see batches in order); different tenants
     * mutate concurrently on the shared pool.
     */
    struct TenantGraph
    {
        std::mutex mu;
        uint64_t numIndices = 0;
        std::unique_ptr<DynamicGraph> graph;
        std::unique_ptr<IncrementalDegreeCount> degrees;
        std::unique_ptr<DeltaPagerank> pagerank;

        /** LSN of the last WAL record folded into graph (0 = none).
         * Guarded by mu; recovery skips records at or below it. */
        uint64_t lastLsn = 0;
    };

    void dispatchLoop();

    /** Terminal bookkeeping shared by every path out of the queue. */
    void finish(std::unique_ptr<Job> job, ResponseFrame resp);

    /** Run the supervised kernel for @p job (the "running" state). */
    ResponseFrame execute(Job &job);

    /** kMutate: trial-commit a batch into the tenant's graph, then
     * incremental recompute certified against full recompute. */
    ResponseFrame executeMutate(Job &job);

    /** kSnapshot: checksum the tenant's merged CSR. */
    ResponseFrame executeSnapshot(Job &job);

    /** The tenant's graph state, created on first kMutate. */
    std::shared_ptr<TenantGraph> tenantGraph(uint64_t tenant,
                                             bool create);

    void bumpTenant(uint64_t tenant, const char *what);

    /** Startup recovery (ctor-only): load the newest valid checkpoint,
     * replay + certify the WAL suffix. Throws typed Error on refusal. */
    void recover();

    /** Background checkpoint timer (checkpointInterval > 0). */
    void checkpointLoop();

    const ServerConfig cfg_;
    ThreadPool &pool_;
    AdmissionController admission_;
    TenantQueues<std::unique_ptr<Job>> queues_;
    std::vector<std::thread> dispatchers_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};

    /**
     * Shutdown gate: submit() holds it shared across its
     * check-stopping -> push window; stop() takes it exclusive to
     * flip stopping_, so no submit can slip a job into the queue
     * after stop() has drained it — every future resolves.
     */
    std::shared_mutex gate_;

    std::mutex tenantsMu_; ///< guards tenants_ (map shape only)
    std::map<uint64_t, std::shared_ptr<TenantGraph>> tenants_;

    std::atomic<uint64_t> received_{0}, rejectedInvalid_{0},
        rejectedOverload_{0}, rejectedQuota_{0}, admitted_{0},
        completed_{0}, failed_{0}, shed_{0}, deadlineExceeded_{0};
    std::atomic<uint64_t> mutateBatches_{0}, mutateOps_{0},
        mutateApplied_{0}, mutateDeduped_{0}, mutateRejected_{0},
        compactions_{0}, recertifications_{0};

    // Durability state (all unused when cfg_.durability is disabled).
    // walMu_ makes LSN assignment and the file append one atomic step,
    // so the on-disk record order IS the lsn order.
    std::unique_ptr<WalWriter> wal_;
    std::mutex walMu_;
    std::atomic<uint64_t> nextLsn_{0}; ///< last assigned lsn
    RecoveryReport recovery_;

    std::mutex ckptMu_; ///< serializes whole checkpoints
    /** minCover of the previous retained checkpoint: the WAL
     * truncation frontier (guarded by ckptMu_). */
    uint64_t prevCheckpointCover_ = 0;
    std::thread ckptThread_;
    std::mutex ckptCvMu_;
    std::condition_variable ckptCv_;
    bool ckptStop_ = false; ///< guarded by ckptCvMu_
};

} // namespace cobra

#endif // COBRA_SERVER_BATCH_SERVER_H
