/**
 * @file
 * Wire frames for the batch server: one request = one supervised PB
 * run; one response = the serialized outcome of that run.
 *
 * The protocol is deliberately minimal — length-prefixed binary frames
 * over a local socket (src/server/wire_socket.h) or handed directly to
 * BatchServer::submit() in process. What it is *not* minimal about is
 * validation: a frame crosses a trust boundary (any local process can
 * connect), so decodeRequest() applies the same hostile-input
 * discipline as the graph readers in src/graph/io.cc — every length is
 * range-checked before it sizes an allocation, every arithmetic step
 * that could overflow is checked in 64-bit, every enum is checked
 * against its legal range, and every payload index is checked against
 * the request's own index namespace. A malformed frame becomes a typed
 * Status (never a throw, never UB) so the server can answer it with an
 * error response and move on; the fuzz harness in fuzz/fuzz_frame.cc
 * holds the decoder to that contract.
 *
 * Layout notes: all integers are little-endian, fixed-width, at fixed
 * offsets (no varints), serialized byte-by-byte so the encoder/decoder
 * pair is endian- and alignment-agnostic. ErrorCode and PbEngineKind
 * raw values ride the wire; both ends must be built from the same
 * source revision, which is the deployment model for a localhost batch
 * sidecar (the version field exists to reject anything else loudly).
 */

#ifndef COBRA_SERVER_FRAME_H
#define COBRA_SERVER_FRAME_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/pb/engine_config.h"
#include "src/util/error.h"
#include "src/util/fnv.h"

namespace cobra {

/** Which kernel a request asks the server to run. Only kernels with a
 * host-parallel PB runtime are servable (IntSort et al. are not). */
enum class ServerKernel : uint8_t
{
    kDegreeCount = 1,      ///< payload: (src, dst) pairs, degrees out
    kNeighborPopulate = 2, ///< payload: (src, dst) pairs, CSR out
    kPagerank = 3,         ///< payload: (src, dst) pairs, one PR iter
    kSpmv = 4,             ///< payload: (row, col) pairs; the server
                           ///< derives deterministic values and x
};

inline const char *
to_string(ServerKernel k)
{
    switch (k) {
      case ServerKernel::kDegreeCount: return "degree";
      case ServerKernel::kNeighborPopulate: return "np";
      case ServerKernel::kPagerank: return "pagerank";
      case ServerKernel::kSpmv: return "spmv";
    }
    return "unknown";
}

inline std::optional<ServerKernel>
serverKernelFromName(std::string_view name)
{
    for (ServerKernel k :
         {ServerKernel::kDegreeCount, ServerKernel::kNeighborPopulate,
          ServerKernel::kPagerank, ServerKernel::kSpmv})
        if (name == to_string(k))
            return k;
    return std::nullopt;
}

/**
 * What the request asks the server to do. kRun is the original
 * stateless one-shot (build a kernel from the payload, run it, discard
 * it). kMutate and kSnapshot address the per-tenant *mutable* graph:
 * mutate applies the payload as an edge-mutation batch and returns the
 * incremental recompute's checksum; snapshot checksums the tenant's
 * current merged CSR. The op rides the byte that was reserved after
 * the flags byte, so version-1 frames from older encoders decode as
 * kRun unchanged.
 */
enum class RequestOp : uint8_t
{
    kRun = 0,      ///< stateless supervised PB run (original protocol)
    kMutate = 1,   ///< apply payload as a mutation batch to tenant state
    kSnapshot = 2, ///< checksum the tenant's merged graph snapshot
};

inline const char *
to_string(RequestOp op)
{
    switch (op) {
      case RequestOp::kRun: return "run";
      case RequestOp::kMutate: return "mutate";
      case RequestOp::kSnapshot: return "snapshot";
    }
    return "unknown";
}

/**
 * kMutate payload encoding: still (src, dst) word pairs, but bit 31 of
 * the *src* word marks the op as a delete. Valid vertex ids fit 31
 * bits (numIndices is capped at 2^31), so the bit is always free; the
 * dst word must never carry it.
 */
inline constexpr uint32_t kMutateDeleteBit = 0x80000000u;

// Frame limits. kMaxFrameBytes bounds what a reader will ever buffer
// for one frame (enforced again by the socket layer before the decoder
// even sees the bytes); the rest bound individual fields so a hostile
// header cannot size a pathological run.
inline constexpr uint32_t kRequestMagic = 0x51524243u;  // "CBRQ"
inline constexpr uint32_t kResponseMagic = 0x53524243u; // "CBRS"
inline constexpr uint16_t kWireVersion = 1;
inline constexpr uint64_t kMaxFrameBytes = 64ull << 20;
inline constexpr size_t kRequestHeaderBytes = 76;
inline constexpr size_t kResponseHeaderBytes = 76;
inline constexpr uint64_t kMaxPayloadWords =
    (kMaxFrameBytes - kRequestHeaderBytes) / 4;
inline constexpr uint64_t kMaxRequestIndices = 1ull << 31;
inline constexpr uint32_t kMaxRequestBins = 1u << 26;
inline constexpr uint32_t kMaxWcLines = 64;
inline constexpr uint32_t kMaxDeadlineMs = 10 * 60 * 1000;
inline constexpr uint32_t kMaxMsgBytes = 4096;

/** One client request: which kernel to run, how, and on what data. */
struct RequestFrame
{
    uint64_t tenantId = 0;
    uint64_t requestId = 0; ///< client-chosen echo token
    ServerKernel kernel = ServerKernel::kDegreeCount;
    PbEngineKind engine = PbEngineKind::kScalar;
    RequestOp op = RequestOp::kRun;
    bool skewAdaptive = false;
    uint32_t bins = 1024;
    uint32_t wcLines = 1;
    uint32_t deadlineMs = 0; ///< whole-request budget; 0 = none

    // Optional per-request chaos plan (see src/check/fault_injector.h):
    // site 0 = none. Scoped to this request's run only.
    uint32_t injectSite = 0;
    uint64_t injectFireAt = 0;
    uint64_t injectSeed = 0;

    uint64_t numIndices = 0; ///< index namespace (node count)

    /**
     * (src, dst) pairs, flattened; every word < numIndices. For
     * op == kMutate the src word may carry kMutateDeleteBit; for
     * op == kSnapshot the payload must be empty.
     */
    std::vector<uint32_t> payload;

    uint64_t numUpdates() const { return payload.size() / 2; }
};

/** One server response: the request's lifecycle outcome. */
struct ResponseFrame
{
    uint64_t tenantId = 0;
    uint64_t requestId = 0;
    ErrorCode code = ErrorCode::kOk;

    // Supervisor telemetry (zero when the request never ran).
    uint32_t attempts = 0;
    uint32_t retries = 0;
    uint32_t degradations = 0;
    bool usedBaseline = false;
    PbEngineKind finalEngine = PbEngineKind::kScalar;
    uint32_t finalBins = 0;

    uint64_t resultChecksum = 0; ///< FNV-1a of the output; 0 on failure
    uint64_t serverMicros = 0;   ///< run wall time on the dispatcher
    uint64_t queueMicros = 0;    ///< admitted -> dispatched latency
    std::string message;         ///< failure detail (bounded)
};

// fnv1a (the response's result fingerprint) now lives in
// src/util/fnv.h so the graph and durability layers can share it.

/**
 * Semantic validation shared by the decoder and the in-process submit
 * path: enum ranges, power-of-two bins, field caps, payload shape, and
 * the O(n) index-bounds scan. Returns the first violation.
 */
Status validateRequest(const RequestFrame &req);

/** Exact encoded size of @p req (header + payload). */
uint64_t encodedRequestBytes(const RequestFrame &req);

/**
 * Serialize @p req. Throws Error(kInvalidArgument) when the frame
 * fails validateRequest() — an encoder must never emit a frame its
 * own decoder would reject.
 */
std::vector<uint8_t> encodeRequest(const RequestFrame &req);

/**
 * Parse and fully validate a request frame. Never throws; on any
 * violation returns a typed Status and leaves @p out unspecified.
 */
Status decodeRequest(const uint8_t *data, size_t len, RequestFrame *out);

/** Serialize @p resp (message silently truncated to kMaxMsgBytes). */
std::vector<uint8_t> encodeResponse(const ResponseFrame &resp);

/** Parse and validate a response frame. Never throws. */
Status decodeResponse(const uint8_t *data, size_t len,
                      ResponseFrame *out);

} // namespace cobra

#endif // COBRA_SERVER_FRAME_H
