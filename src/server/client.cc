#include "src/server/client.h"

#include <cerrno>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/server/wire_socket.h"
#include "src/util/rng.h"

namespace cobra {

namespace {

/** RAII socket so every early return closes the fd. */
class Fd
{
  public:
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;
    int get() const { return fd_; }

  private:
    int fd_;
};

} // namespace

Status
ServerClient::callOnce(const std::vector<uint8_t> &encoded,
                       ResponseFrame *out)
{
    sockaddr_un addr;
    if (cfg_.socketPath.empty() ||
        cfg_.socketPath.size() >= sizeof(addr.sun_path))
        return Status(ErrorCode::kInvalidArgument,
                      "bad socket path '" + cfg_.socketPath + "'");
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, cfg_.socketPath.c_str(),
                cfg_.socketPath.size());

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (fd.get() < 0)
        return Status(ErrorCode::kIoError,
                      std::string("socket: ") + std::strerror(errno));

    // A hung or drowning server must become a typed timeout, not a
    // hung client: bound every send and receive.
    timeval tv{};
    const auto ms = cfg_.timeout.count();
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0)
        return Status(ErrorCode::kUnavailable,
                      "connect '" + cfg_.socketPath +
                          "': " + std::strerror(errno));

    if (Status s = writeFrame(fd.get(), encoded.data(), encoded.size());
        !s.ok())
        return s;

    std::vector<uint8_t> buf;
    if (Status s = readFrame(fd.get(), &buf); !s.ok()) {
        // SO_RCVTIMEO surfaces as EAGAIN from read(): map the
        // transport's "took too long" onto the taxonomy's name for it.
        if (s.message().find("Resource temporarily unavailable") !=
            std::string::npos)
            return Status(ErrorCode::kDeadlineExceeded,
                          "no response within " + std::to_string(ms) +
                              " ms");
        return s;
    }
    if (buf.empty())
        return Status(ErrorCode::kIoError,
                      "server closed the connection without answering");
    return decodeResponse(buf.data(), buf.size(), out);
}

Status
ServerClient::call(const RequestFrame &req, ResponseFrame *out)
{
    const std::vector<uint8_t> encoded = encodeRequest(req); // validates
    // Jitter decorrelates concurrent rejected clients; seeding from
    // the request id keeps a single client's schedule reproducible.
    Rng rng(cfg_.retry.seed ^ req.requestId);
    const uint32_t max_attempts = std::max(1u, cfg_.retry.maxAttempts);
    Status last = Status::Ok();
    for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
        last_attempts_ = attempt;
        Status s = callOnce(encoded, out);
        if (s.ok() && out->code != ErrorCode::kUnavailable)
            return Status::Ok(); // a definitive answer, even a failure
        // Retryable: an explicit kUnavailable response, or any
        // transport-level failure (the server may be mid-restart).
        last = s.ok() ? Status(ErrorCode::kUnavailable, out->message)
                      : s;
        if (attempt == max_attempts)
            break;
        const auto delay = cfg_.retry.delayFor(attempt + 1, rng);
        if (delay.count() > 0)
            std::this_thread::sleep_for(delay);
    }
    if (last.ok())
        return Status(ErrorCode::kUnavailable, "retry budget exhausted");
    return last;
}

} // namespace cobra
