#include "src/server/admission.h"

#include <algorithm>

namespace cobra {

uint64_t
estimateRequestCostBytes(const RequestFrame &req, size_t pool_threads)
{
    const uint64_t threads = std::max<size_t>(1, pool_threads);
    const uint64_t updates = std::max<uint64_t>(1, req.numUpdates());
    // Widest tuple any served kernel bins is 8 B (NeighborPopulate's
    // index+payload); two-pass/hierarchical engines materialize a
    // second copy of the stream, hence x2, plus the bin-boundary
    // bookkeeping that scales with bins.
    const uint64_t tuple_storage = updates * 8 * 2;
    const uint64_t bin_tables =
        uint64_t{req.bins} * 16 * threads; // offsets/counts per thread
    // WC staging: wcLines 64 B lines per bin per thread, but engines
    // cap the resident set; charge the configured plan directly.
    const uint64_t wc_lines =
        uint64_t{req.bins} * req.wcLines * 64 * threads;
    // Output + reference arrays the kernel owns (certification keeps a
    // serial golden copy): numIndices words each, plus CSR offsets.
    const uint64_t outputs = req.numIndices * 4 * 2 + req.numIndices * 8;
    const uint64_t slack = 1ull << 20;
    return tuple_storage + bin_tables + wc_lines + outputs + slack;
}

AdmissionController::AdmissionController(AdmissionConfig cfg)
    : cfg_(cfg), global_budget_(cfg.globalBudgetBytes)
{
}

Status
AdmissionController::tryAdmit(uint64_t tenant, uint64_t cost_bytes)
{
    MemoryBudget *tenant_budget = nullptr;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        if (cfg_.maxOutstandingGlobal != 0 &&
            outstanding_global_ >= cfg_.maxOutstandingGlobal)
            return Status(ErrorCode::kUnavailable,
                          "server at capacity: " +
                              std::to_string(outstanding_global_) +
                              " requests outstanding; retry later");
        uint32_t &mine = outstanding_tenant_[tenant];
        if (cfg_.maxOutstandingPerTenant != 0 &&
            mine >= cfg_.maxOutstandingPerTenant)
            return Status(ErrorCode::kUnavailable,
                          "tenant " + std::to_string(tenant) +
                              " at its outstanding cap of " +
                              std::to_string(
                                  cfg_.maxOutstandingPerTenant) +
                              "; retry later");
        if (cfg_.tenantBudgetBytes != 0) {
            auto &slot = tenant_budgets_[tenant];
            if (!slot)
                slot = std::make_unique<MemoryBudget>(
                    cfg_.tenantBudgetBytes);
            tenant_budget = slot.get();
        }
        // Reserve the slots under the lock; budgets are charged after
        // (they are thread-safe, and a failed charge rolls these back).
        ++outstanding_global_;
        ++mine;
    }

    // Global budget: full means the *service* is over-committed —
    // transient from this tenant's point of view, so kUnavailable.
    try {
        global_budget_.charge(cost_bytes);
    } catch (const Error &e) {
        std::lock_guard<std::mutex> lk(mtx_);
        --outstanding_global_;
        --outstanding_tenant_[tenant];
        return Status(ErrorCode::kUnavailable,
                      std::string("global memory reservation failed: ") +
                          e.what() + "; retry later");
    }
    // Tenant budget: full means this tenant's own quota is the
    // pressure — kResourceExhausted, backing off won't free it.
    if (tenant_budget) {
        try {
            tenant_budget->charge(cost_bytes);
        } catch (const Error &e) {
            global_budget_.release(cost_bytes);
            std::lock_guard<std::mutex> lk(mtx_);
            --outstanding_global_;
            --outstanding_tenant_[tenant];
            return Status(ErrorCode::kResourceExhausted,
                          "tenant " + std::to_string(tenant) +
                              " memory quota: " + e.what());
        }
    }
    return Status::Ok();
}

void
AdmissionController::release(uint64_t tenant, uint64_t cost_bytes)
{
    global_budget_.release(cost_bytes);
    std::lock_guard<std::mutex> lk(mtx_);
    --outstanding_global_;
    --outstanding_tenant_[tenant];
    if (auto it = tenant_budgets_.find(tenant);
        it != tenant_budgets_.end())
        it->second->release(cost_bytes);
}

uint32_t
AdmissionController::outstanding() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return outstanding_global_;
}

} // namespace cobra
