/**
 * @file
 * First-order out-of-order core cost model.
 *
 * Stands in for Sniper's interval core model (see DESIGN.md Section 5).
 * Cycle time is modeled as issue-limited base time plus the *exposed*
 * portion of memory and branch penalties:
 *
 *   cycles = instructions / issueWidth
 *          + mispredicts * branchPenalty
 *          + sum over levels: accesses(level) * latency(level) / MLP(level)
 *
 * L1 hits are considered fully pipelined (their latency is hidden by the
 * OoO window). Deeper levels are discounted by a memory-level-parallelism
 * factor: an OoO core overlaps several outstanding misses, but irregular
 * pointer-fanout access streams cannot reach full MSHR occupancy. Store
 * misses are further discounted because the store buffer retires them off
 * the critical path. These coefficients reproduce the paper's *shapes*
 * (who wins and by roughly what factor), which is what this reproduction
 * targets; see EXPERIMENTS.md for the paper-vs-measured comparison.
 */

#ifndef COBRA_SIM_CORE_MODEL_H
#define COBRA_SIM_CORE_MODEL_H

#include <cstdint>

#include "src/mem/types.h"

namespace cobra {

/** Tunable coefficients of the cost model (defaults per Table II core). */
struct CoreModelConfig
{
    double issueWidth = 4.0;        ///< 4-wide issue (Table II)
    double branchPenalty = 14.0;    ///< pipeline refill cycles
    double mlpL2 = 2.0;             ///< overlap factor for L2 hits
    double mlpLLC = 3.0;            ///< overlap factor for LLC hits
    double mlpDRAM = 4.0;           ///< overlap factor for DRAM accesses
    double storeFactor = 0.35;      ///< stores mostly retire via store buffer
    uint32_t latL2 = 8;             ///< load-to-use latencies (Table II)
    uint32_t latLLC = 21;
    uint32_t latDRAM = 200;         ///< 80ns at 2.66GHz ~ 213; rounded
};

/** Cycle accounting bucketed by cause. */
struct CycleBreakdown
{
    double base = 0;   ///< instructions / issueWidth
    double branch = 0; ///< misprediction penalties
    double l2 = 0;     ///< exposed L2-hit latency
    double llc = 0;    ///< exposed LLC-hit latency
    double dram = 0;   ///< exposed DRAM latency
    double stall = 0;  ///< explicit stalls (e.g. full eviction buffers)

    double total() const { return base + branch + l2 + llc + dram + stall; }

    CycleBreakdown &
    operator+=(const CycleBreakdown &o)
    {
        base += o.base;
        branch += o.branch;
        l2 += o.l2;
        llc += o.llc;
        dram += o.dram;
        stall += o.stall;
        return *this;
    }
};

/** Accumulates dynamic events and converts them to cycles. */
class CoreModel
{
  public:
    explicit CoreModel(const CoreModelConfig &config = CoreModelConfig{})
        : cfg(config)
    {
    }

    /** Account @p n retired instructions. */
    void retire(uint64_t n) { instructions_ += n; }

    /** Account a branch outcome (already predicted by BranchPredictor). */
    void
    branch(bool mispredicted)
    {
        if (mispredicted)
            ++mispredicts_;
    }

    /** Account a demand memory access satisfied at @p level. */
    void
    memAccess(HitLevel level, bool is_store)
    {
        switch (level) {
          case HitLevel::L1: ++l1Hits_; break;
          case HitLevel::L2: is_store ? ++l2Stores_ : ++l2Loads_; break;
          case HitLevel::LLC: is_store ? ++llcStores_ : ++llcLoads_; break;
          case HitLevel::DRAM: is_store ? ++dramStores_ : ++dramLoads_; break;
        }
    }

    /** Account explicit stall cycles (eviction-buffer backpressure). */
    void stall(double cycles) { stallCycles_ += cycles; }

    uint64_t instructions() const { return instructions_; }
    uint64_t mispredicts() const { return mispredicts_; }

    CycleBreakdown
    cycles() const
    {
        CycleBreakdown b;
        b.base = static_cast<double>(instructions_) / cfg.issueWidth;
        b.branch = static_cast<double>(mispredicts_) * cfg.branchPenalty;
        auto exposed = [&](uint64_t loads, uint64_t stores, uint32_t lat,
                           double mlp) {
            return (static_cast<double>(loads) +
                    static_cast<double>(stores) * cfg.storeFactor) *
                static_cast<double>(lat) / mlp;
        };
        b.l2 = exposed(l2Loads_, l2Stores_, cfg.latL2, cfg.mlpL2);
        b.llc = exposed(llcLoads_, llcStores_, cfg.latLLC, cfg.mlpLLC);
        b.dram = exposed(dramLoads_, dramStores_, cfg.latDRAM, cfg.mlpDRAM);
        b.stall = stallCycles_;
        return b;
    }

    double
    ipc() const
    {
        double c = cycles().total();
        return c > 0 ? static_cast<double>(instructions_) / c : 0.0;
    }

    void
    reset()
    {
        *this = CoreModel(cfg);
    }

  private:
    CoreModelConfig cfg;
    uint64_t instructions_ = 0;
    uint64_t mispredicts_ = 0;
    uint64_t l1Hits_ = 0;
    uint64_t l2Loads_ = 0, l2Stores_ = 0;
    uint64_t llcLoads_ = 0, llcStores_ = 0;
    uint64_t dramLoads_ = 0, dramStores_ = 0;
    double stallCycles_ = 0;
};

} // namespace cobra

#endif // COBRA_SIM_CORE_MODEL_H
