#include "src/sim/trace.h"

#include <fstream>

#include "src/util/error.h"

namespace cobra {

namespace {
constexpr uint64_t kTraceMagic = 0x434F425241545231ULL; // "COBRATR1"
} // namespace

void
saveTrace(const std::string &path, const UpdateTrace &trace)
{
    std::ofstream out(path, std::ios::binary);
    COBRA_FATAL_IF(!out, "cannot open " << path << " for writing");
    const uint64_t count = trace.indices.size();
    out.write(reinterpret_cast<const char *>(&kTraceMagic), 8);
    out.write(reinterpret_cast<const char *>(&trace.numIndices), 8);
    out.write(reinterpret_cast<const char *>(&count), 8);
    out.write(reinterpret_cast<const char *>(trace.indices.data()),
              static_cast<std::streamsize>(count * sizeof(uint32_t)));
    COBRA_FATAL_IF(!out, "write to " << path << " failed");
}

UpdateTrace
loadTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    COBRA_FATAL_IF(!in, "cannot open " << path);
    uint64_t magic = 0, count = 0;
    UpdateTrace t;
    in.read(reinterpret_cast<char *>(&magic), 8);
    COBRA_FATAL_IF(!in || magic != kTraceMagic,
                   path << ": not a cobra trace");
    in.read(reinterpret_cast<char *>(&t.numIndices), 8);
    in.read(reinterpret_cast<char *>(&count), 8);
    COBRA_FATAL_IF(!in, path << ": truncated header");
    t.indices.resize(count);
    in.read(reinterpret_cast<char *>(t.indices.data()),
            static_cast<std::streamsize>(count * sizeof(uint32_t)));
    COBRA_FATAL_IF(!in, path << ": truncated trace data");
    return t;
}

} // namespace cobra
