/**
 * @file
 * Minimal discrete-event simulation kernel.
 *
 * The paper refines its Little's-Law eviction-buffer estimate with a DES
 * model that accounts for eviction bursts (Section V-D, Fig 13a). The
 * eviction-buffer model in eviction_des.h runs on this kernel; it is also
 * reusable for other queueing studies (tests exercise it standalone).
 */

#ifndef COBRA_SIM_DES_H
#define COBRA_SIM_DES_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace cobra {

/** Simulation time in cycles. */
using SimTime = uint64_t;

/** Event-driven simulator: schedule callbacks at absolute times. */
class DesKernel
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb at absolute time @p when (>= now()). */
    void
    schedule(SimTime when, Callback cb)
    {
        events.push(Event{when, seq++, std::move(cb)});
    }

    /** Schedule @p cb @p delay cycles from now. */
    void
    scheduleAfter(SimTime delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    SimTime now() const { return now_; }

    /** Run until the event queue drains; returns final time. */
    SimTime
    run()
    {
        while (!events.empty()) {
            Event ev = events.top();
            events.pop();
            now_ = ev.when;
            ev.cb();
        }
        return now_;
    }

    bool empty() const { return events.empty(); }

  private:
    struct Event
    {
        SimTime when;
        uint64_t order; ///< FIFO tie-break for same-cycle events
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : order > o.order;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
    SimTime now_ = 0;
    uint64_t seq = 0;
};

} // namespace cobra

#endif // COBRA_SIM_DES_H
