/**
 * @file
 * The simulated machine (paper Table II), bundled.
 *
 * One simulated core of the 16-core machine: 4-wide OoO at 2.66GHz,
 * 32KB/8-way Bit-PLRU L1D, 256KB/8-way Bit-PLRU L2 with a stream
 * prefetcher, the core's local 2MB/16-way DRRIP NUCA LLC slice, 80ns
 * DRAM. PB/COBRA state is core-private by construction, so single-slice
 * simulation preserves per-core behaviour (DESIGN.md Section 5).
 */

#ifndef COBRA_SIM_MACHINE_CONFIG_H
#define COBRA_SIM_MACHINE_CONFIG_H

#include <ostream>

#include "src/mem/hierarchy.h"
#include "src/sim/branch_predictor.h"
#include "src/sim/core_model.h"

namespace cobra {

/** Full per-core machine description. */
struct MachineConfig
{
    HierarchyConfig hierarchy{};
    CoreModelConfig core{};
    BranchPredictor::Config branch{};

    /** The paper's default machine (Table II). */
    static MachineConfig
    defaultMachine()
    {
        return MachineConfig{};
    }

    void
    print(std::ostream &os) const
    {
        os << "Simulated machine (per core; paper Table II):\n"
           << "  core: " << core.issueWidth << "-wide OoO issue, "
           << core.branchPenalty << "-cycle branch penalty\n"
           << "  L1D:  " << hierarchy.l1.sizeBytes / 1024 << "KB "
           << hierarchy.l1.ways << "-way "
           << to_string(hierarchy.l1.policy)
           << ", load-to-use " << hierarchy.l1.loadToUse << "\n"
           << "  L2:   " << hierarchy.l2.sizeBytes / 1024 << "KB "
           << hierarchy.l2.ways << "-way "
           << to_string(hierarchy.l2.policy)
           << ", load-to-use " << hierarchy.l2.loadToUse
           << ", stream prefetcher\n"
           << "  LLC:  " << hierarchy.llc.sizeBytes / (1024 * 1024)
           << "MB slice, " << hierarchy.llc.ways << "-way "
           << to_string(hierarchy.llc.policy)
           << ", load-to-use " << hierarchy.llc.loadToUse << "\n"
           << "  DRAM: " << hierarchy.dram.accessLatency
           << "-cycle access latency\n";
    }
};

} // namespace cobra

#endif // COBRA_SIM_MACHINE_CONFIG_H
