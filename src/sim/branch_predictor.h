/**
 * @file
 * Gshare branch predictor model.
 *
 * Software PB's Binning phase executes a buffer-full check after every
 * tuple insertion; those data-dependent branches mispredict and erode ILP
 * (paper Section III-C, Fig 12 bottom). COBRA eliminates them entirely.
 * The kernels report every conditional branch to this model through the
 * execution context so that PB and COBRA variants see faithful relative
 * misprediction rates.
 */

#ifndef COBRA_SIM_BRANCH_PREDICTOR_H
#define COBRA_SIM_BRANCH_PREDICTOR_H

#include <cstdint>
#include <vector>

namespace cobra {

/** Gshare: global history XOR PC indexes a table of 2-bit counters. */
class BranchPredictor
{
  public:
    struct Config
    {
        uint32_t historyBits = 12;
        uint32_t tableBits = 14;
    };

    BranchPredictor() : BranchPredictor(Config{}) {}
    explicit BranchPredictor(const Config &config);

    /**
     * Predict-and-update for a branch at site @p pc with outcome
     * @p taken; returns true if the prediction was correct.
     */
    bool predict(uint64_t pc, bool taken);

    uint64_t branches() const { return numBranches; }
    uint64_t mispredicts() const { return numMispredicts; }

    double
    missRate() const
    {
        return numBranches
            ? static_cast<double>(numMispredicts) /
                  static_cast<double>(numBranches)
            : 0.0;
    }

    void reset();

  private:
    Config cfg;
    std::vector<uint8_t> table; ///< 2-bit saturating counters
    uint64_t history = 0;
    uint64_t numBranches = 0;
    uint64_t numMispredicts = 0;
};

} // namespace cobra

#endif // COBRA_SIM_BRANCH_PREDICTOR_H
