/**
 * @file
 * Execution context: the bridge between kernels and the simulator.
 *
 * Every kernel (src/kernels) performs its *functional* computation on real
 * host memory while reporting each memory access, instruction group, and
 * conditional branch to an ExecCtx. A default-constructed ("native")
 * context ignores the reports — the kernel runs at full host speed for
 * wall-clock experiments and correctness tests. A context wired to a
 * MemoryHierarchy / CoreModel / BranchPredictor replays the same dynamic
 * stream through the simulated machine (DESIGN.md, execution-context
 * pattern).
 *
 * Conventions:
 *  - load()/store() model one instruction each and touch every cache line
 *    their byte range spans (ranges are normally <= 8B);
 *  - instr(n) accounts n ALU/address-generation instructions;
 *  - branch() accounts one instruction plus a prediction;
 *  - ntStore() models a write-combining non-temporal store (PB's bulk
 *    C-Buffer-to-bin transfers; added to Sniper by the paper's authors).
 */

#ifndef COBRA_SIM_EXEC_CTX_H
#define COBRA_SIM_EXEC_CTX_H

#include <cstdint>

#include "src/mem/hierarchy.h"
#include "src/sim/branch_predictor.h"
#include "src/sim/core_model.h"

namespace cobra {

/** Kernel-to-simulator bridge; null members = native (uninstrumented). */
class ExecCtx
{
  public:
    /** Native context: all reports are no-ops. */
    ExecCtx() = default;

    /** Simulation context. */
    ExecCtx(MemoryHierarchy *hierarchy, CoreModel *core_model,
            BranchPredictor *branch_predictor)
        : hier(hierarchy), core(core_model), bp(branch_predictor)
    {
    }

    bool simulated() const { return hier != nullptr; }

    MemoryHierarchy *hierarchy() { return hier; }
    CoreModel *coreModel() { return core; }
    BranchPredictor *branchPredictor() { return bp; }

    /** One load instruction covering [p, p+bytes). */
    void
    load(const void *p, uint32_t bytes)
    {
        if (hier)
            simAccess(p, bytes, AccessType::Load);
    }

    /** One store instruction covering [p, p+bytes). */
    void
    store(const void *p, uint32_t bytes)
    {
        if (hier)
            simAccess(p, bytes, AccessType::Store);
    }

    /** Non-temporal (write-combining) store of @p bytes. */
    void
    ntStore(const void *p, uint32_t bytes)
    {
        if (hier) {
            core->retire(bytes / 8 ? bytes / 8 : 1);
            hier->ntStore(reinterpret_cast<Addr>(p), bytes);
        }
    }

    /** @p n non-memory instructions. */
    void
    instr(uint64_t n)
    {
        if (core)
            core->retire(n);
    }

    /** Conditional branch at static site @p site with outcome @p taken. */
    void
    branch(uint64_t site, bool taken)
    {
        if (bp) {
            bool correct = bp->predict(site, taken);
            core->retire(1);
            core->branch(!correct);
        }
    }

    /**
     * Direct DRAM line write carrying @p useful_bytes of payload — the
     * LLC C-Buffer spill path (COBRA writes full 64B lines to in-memory
     * bins without passing through the cache hierarchy). Partial lines
     * waste bandwidth, which the DRAM model tracks.
     */
    void
    dramWriteLine(uint32_t useful_bytes)
    {
        if (hier)
            hier->dramWriteLine(useful_bytes);
    }

    /** Explicit stall cycles (COBRA eviction-buffer backpressure). */
    void
    stall(double cycles)
    {
        if (core)
            core->stall(cycles);
    }

    /** Current cycle estimate (0 when native). */
    double
    cycles() const
    {
        return core ? core->cycles().total() : 0.0;
    }

  private:
    void
    simAccess(const void *p, uint32_t bytes, AccessType type)
    {
        core->retire(1);
        const Addr a = reinterpret_cast<Addr>(p);
        const Addr first = lineAddr(a);
        const Addr last = lineAddr(a + (bytes ? bytes - 1 : 0));
        for (Addr line = first; line <= last; line += kLineSize) {
            HitLevel lvl = hier->access(line, type);
            core->memAccess(lvl, type == AccessType::Store);
        }
    }

    MemoryHierarchy *hier = nullptr;
    CoreModel *core = nullptr;
    BranchPredictor *bp = nullptr;
};

} // namespace cobra

#endif // COBRA_SIM_EXEC_CTX_H
