/**
 * @file
 * Discrete-event model of COBRA's eviction buffers (paper Fig 13a).
 *
 * Little's Law sizes the L1->L2 eviction buffer at 14 entries assuming a
 * steady-state eviction rate, but bursts (runs of tuples hitting the same
 * L1 C-Buffer, common in skewed inputs) invalidate the steady-state
 * assumption. This model replays an actual tuple trace through a tandem
 * queue — core -> FIFO1 -> L1->L2 binning engine -> FIFO2 -> L2->LLC
 * binning engine -> memory — and reports the fraction of core cycles
 * stalled on a full FIFO, for a given FIFO capacity.
 *
 * Timing assumptions (paper Section V-D): the core inserts one tuple per
 * cycle; a binning engine extracts and re-inserts one tuple per cycle; a
 * FIFO slot is held from the moment a full C-Buffer line is pushed until
 * the engine finishes scattering its tuples. The engine serving level
 * L_i stalls when the FIFO into L_{i+1} is full (backpressure), which is
 * how bursts propagate into core-visible stalls.
 */

#ifndef COBRA_SIM_EVICTION_DES_H
#define COBRA_SIM_EVICTION_DES_H

#include <cstdint>
#include <vector>

#include "src/util/error.h"

namespace cobra {

/** Parameters of the tandem-queue model. */
struct EvictionDesConfig
{
    uint64_t numIndices = 1 << 20;  ///< data namespace size
    uint32_t tuplesPerLine = 8;     ///< 64B line / 8B tuple
    uint32_t numL1Buffers = 448;    ///< C-Buffers pinned in L1
    uint32_t numL2Buffers = 512;    ///< C-Buffers pinned in L2
    uint32_t numLlcBuffers = 30720; ///< C-Buffers pinned in the LLC slice
    uint32_t fifo1Capacity = 32;    ///< L1->L2 eviction buffer entries
    uint32_t fifo2Capacity = 8;     ///< L2->LLC eviction buffer entries

    /**
     * Core cycles per tuple insertion. Binning interleaves each
     * binupdate with streaming loads and loop overhead, so the sustained
     * insertion rate is below 1/cycle; 3 matches the ~1.55-IPC Binning
     * the paper reports. The binning engines still move one tuple per
     * cycle, which is what makes eviction latency hideable at all (a
     * 1/cycle core would saturate the L1->L2 engine permanently).
     */
    uint32_t coreCyclesPerTuple = 3;
};

/** Results of one trace replay. */
struct EvictionDesResult
{
    uint64_t totalCycles = 0;
    uint64_t coreStallCycles = 0;   ///< core blocked on full FIFO1
    uint64_t engineStallCycles = 0; ///< L1 engine blocked on full FIFO2
    uint64_t l1Evictions = 0;
    uint64_t l2Evictions = 0;
    uint64_t llcEvictions = 0;

    // Tuple-conservation bookkeeping: every tuple the core inserted must
    // either still sit in a C-Buffer at the end of the replay or have
    // moved down exactly one level per eviction. A dropped or replayed
    // eviction anywhere in the pipeline breaks one of these identities.
    uint32_t tuplesPerLine = 0; ///< copied from the config
    uint64_t tuplesIn = 0;      ///< trace length
    uint64_t tuplesIntoL2 = 0;  ///< scattered by the L1->L2 engine
    uint64_t tuplesIntoLlc = 0; ///< scattered by the L2->LLC engine
    uint64_t l1Residue = 0;     ///< left in L1 C-Buffers at the end
    uint64_t l2Residue = 0;
    uint64_t llcResidue = 0;

    double
    stallFraction() const
    {
        return totalCycles
            ? static_cast<double>(coreStallCycles) /
                  static_cast<double>(totalCycles)
            : 0.0;
    }

    /**
     * Check the tuple-conservation laws of the tandem queue. Returns a
     * kDataLoss Status naming the first violated identity; the fault-
     * injection tests prove each DES injection point trips this.
     */
    Status validate() const;
};

/**
 * Replay @p trace (a sequence of update-tuple indices, in program order)
 * through the eviction pipeline.
 */
EvictionDesResult runEvictionDes(const EvictionDesConfig &cfg,
                                 const std::vector<uint32_t> &trace);

} // namespace cobra

#endif // COBRA_SIM_EVICTION_DES_H
