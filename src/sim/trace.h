/**
 * @file
 * Update-trace capture and replay.
 *
 * The paper's DES model "consumes a trace of update tuples" (Section
 * V-D). These helpers persist such traces (the index stream of a
 * Binning phase) so DES studies can replay the exact same workload
 * across configurations or machines. Format: little-endian
 * {magic, numIndices, count} header + count u32 indices.
 */

#ifndef COBRA_SIM_TRACE_H
#define COBRA_SIM_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace cobra {

/** An update-index trace with its namespace size. */
struct UpdateTrace
{
    uint64_t numIndices = 0;
    std::vector<uint32_t> indices;
};

/** Write @p trace to @p path (.trc). */
void saveTrace(const std::string &path, const UpdateTrace &trace);

/** Read a trace written by saveTrace. */
UpdateTrace loadTrace(const std::string &path);

} // namespace cobra

#endif // COBRA_SIM_TRACE_H
