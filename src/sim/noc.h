/**
 * @file
 * Mesh network-on-chip model (paper Table II: 4x4 mesh, 2-cycle hop
 * latency, 64 bits/cycle link bandwidth).
 *
 * Used by the multicore simulation: during Accumulate, a core reading a
 * *remote* core's bins pulls the lines across the mesh; the transfer
 * cost is hop latency plus per-line serialization at the link width.
 * Requests pipeline, so the per-message latency is discounted by an
 * overlap factor in the caller.
 */

#ifndef COBRA_SIM_NOC_H
#define COBRA_SIM_NOC_H

#include <cstdint>

#include "src/mem/types.h"
#include "src/util/bitops.h"
#include "src/util/error.h"

namespace cobra {

/** 2D mesh with XY routing. */
class MeshNoc
{
  public:
    struct Config
    {
        uint32_t hopLatency = 2;      ///< cycles per hop (Table II)
        uint32_t linkBytesPerCycle = 8; ///< 64 bits/cycle (Table II)
    };

    /** @param num_cores laid out on the most-square grid possible. */
    explicit MeshNoc(uint32_t num_cores)
        : MeshNoc(num_cores, Config{})
    {
    }

    MeshNoc(uint32_t num_cores, const Config &config)
        : cfg(config), cores(num_cores)
    {
        COBRA_FATAL_IF(num_cores == 0, "empty mesh");
        // Widest factor <= sqrt(n) keeps the grid near-square.
        width = 1;
        for (uint32_t w = 1; w * w <= num_cores; ++w)
            if (num_cores % w == 0)
                width = num_cores / w;
        height = num_cores / width;
    }

    uint32_t numCores() const { return cores; }
    uint32_t gridWidth() const { return width; }
    uint32_t gridHeight() const { return height; }

    /** Manhattan (XY-routed) hop count between two cores. */
    uint32_t
    hops(uint32_t a, uint32_t b) const
    {
        COBRA_PANIC_IF(a >= cores || b >= cores, "core id out of range");
        uint32_t ax = a % width, ay = a / width;
        uint32_t bx = b % width, by = b / width;
        uint32_t dx = ax > bx ? ax - bx : bx - ax;
        uint32_t dy = ay > by ? ay - by : by - ay;
        return dx + dy;
    }

    /** Mean hop distance from core @p a to every other core. */
    double
    meanHops(uint32_t a) const
    {
        if (cores <= 1)
            return 0.0;
        uint64_t total = 0;
        for (uint32_t b = 0; b < cores; ++b)
            total += hops(a, b);
        return static_cast<double>(total) / (cores - 1);
    }

    /**
     * Cycles to move @p lines cache lines over @p hop_count hops: head
     * latency once per message plus per-line serialization at the link
     * width (wormhole pipelining across hops).
     */
    double
    transferCycles(uint64_t lines, uint32_t hop_count) const
    {
        if (lines == 0)
            return 0.0;
        const double head =
            static_cast<double>(hop_count) * cfg.hopLatency;
        const double serialize = static_cast<double>(lines) *
            (static_cast<double>(kLineSize) / cfg.linkBytesPerCycle);
        return head + serialize;
    }

  private:
    Config cfg;
    uint32_t cores;
    uint32_t width = 1;
    uint32_t height = 1;
};

} // namespace cobra

#endif // COBRA_SIM_NOC_H
