#include "src/sim/eviction_des.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "src/check/fault_injector.h"
#include "src/util/bitops.h"
#include "src/util/error.h"

namespace cobra {

namespace {

/** Shift s such that index >> s maps [0, numIndices) onto numBuffers. */
uint32_t
rangeShift(uint64_t num_indices, uint32_t num_buffers)
{
    uint64_t range = ceilPow2(divCeil(num_indices, num_buffers));
    return floorLog2(range);
}

/**
 * Bounded FIFO tracked by job completion times. Completions are monotone
 * (single FIFO server), so occupancy at time t is the count of queued
 * completions > t.
 */
class Fifo
{
  public:
    explicit Fifo(uint32_t capacity) : cap(capacity) {}

    /** Release slots whose jobs completed at or before @p t. */
    void
    drain(uint64_t t)
    {
        while (!completions.empty() && completions.front() <= t)
            completions.pop_front();
    }

    /**
     * Block the producer until a slot is free at time @p t; returns the
     * (possibly advanced) time at which a slot is available.
     */
    uint64_t
    waitForSlot(uint64_t t)
    {
        drain(t);
        if (completions.size() >= cap) {
            t = completions.front();
            drain(t);
        }
        return t;
    }

    void push(uint64_t completion) { completions.push_back(completion); }

  private:
    uint32_t cap;
    std::deque<uint64_t> completions;
};

} // namespace

EvictionDesResult
runEvictionDes(const EvictionDesConfig &cfg,
               const std::vector<uint32_t> &trace)
{
    COBRA_FATAL_IF(cfg.tuplesPerLine == 0, "tuplesPerLine must be nonzero");
    COBRA_FATAL_IF(cfg.fifo1Capacity == 0 || cfg.fifo2Capacity == 0,
                   "eviction buffers need at least one entry");

    const uint32_t s1 = rangeShift(cfg.numIndices, cfg.numL1Buffers);
    const uint32_t s2 = rangeShift(cfg.numIndices, cfg.numL2Buffers);
    const uint32_t s3 = rangeShift(cfg.numIndices, cfg.numLlcBuffers);
    const uint32_t k = cfg.tuplesPerLine;

    EvictionDesResult res;

    // Per-level C-Buffer state. L1 buffers remember their tuple indices
    // (needed to scatter across L2 buffers); L2 likewise for the LLC.
    std::vector<std::vector<uint32_t>> l1_buf(cfg.numL1Buffers);
    std::vector<std::vector<uint32_t>> l2_buf(cfg.numL2Buffers);
    std::vector<uint32_t> llc_count(cfg.numLlcBuffers, 0);
    for (auto &b : l1_buf)
        b.reserve(k);
    for (auto &b : l2_buf)
        b.reserve(k);

    Fifo fifo1(cfg.fifo1Capacity);
    Fifo fifo2(cfg.fifo2Capacity);

    uint64_t t = 0;             // core clock
    uint64_t engine1_free = 0;  // L1->L2 binning engine availability
    uint64_t engine2_free = 0;  // L2->LLC binning engine availability

    // Serve one L2->LLC job (a full L2 C-Buffer) starting no earlier than
    // @p ready; returns completion time.
    auto serve2 = [&](uint64_t ready, const std::vector<uint32_t> &tuples) {
        uint64_t cur = std::max(ready, engine2_free);
        for (uint32_t idx : tuples) {
            cur += 1;
            ++res.tuplesIntoLlc;
            uint32_t b = std::min<uint32_t>(idx >> s3,
                                            cfg.numLlcBuffers - 1);
            if (++llc_count[b] == k) {
                llc_count[b] = 0;
                ++res.llcEvictions; // memory accepts lines without stalling
            }
        }
        engine2_free = cur;
        return cur;
    };

    // Serve one L1->L2 job starting no earlier than @p ready.
    auto serve1 = [&](uint64_t ready, const std::vector<uint32_t> &tuples) {
        uint64_t cur = std::max(ready, engine1_free);
        for (uint32_t idx : tuples) {
            cur += 1;
            ++res.tuplesIntoL2;
            uint32_t b = std::min<uint32_t>(idx >> s2,
                                            cfg.numL2Buffers - 1);
            auto &dst = l2_buf[b];
            dst.push_back(idx);
            if (dst.size() == k) {
                // L2 C-Buffer filled: push to FIFO2, stalling this engine
                // if FIFO2 is full.
                uint64_t at = fifo2.waitForSlot(cur);
                res.engineStallCycles += at - cur;
                cur = at;
                fifo2.push(serve2(cur, dst));
                ++res.l2Evictions;
                dst.clear();
            }
        }
        engine1_free = cur;
        return cur;
    };

    FaultInjector *fi = FaultInjector::active();
    for (uint32_t idx : trace) {
        t += cfg.coreCyclesPerTuple;
        ++res.tuplesIn;
        uint32_t b = std::min<uint32_t>(idx >> s1, cfg.numL1Buffers - 1);
        auto &buf = l1_buf[b];
        buf.push_back(idx);
        if (buf.size() == k) {
            // Injection points: one full-line push into FIFO1 is lost,
            // or the same line is served twice.
            if (fi) [[unlikely]] {
                if (fi->fire(FaultSite::kDesDropEviction, b)) {
                    buf.clear();
                    continue;
                }
                if (fi->fire(FaultSite::kDesDuplicateEviction, b))
                    serve1(t, buf);
            }
            uint64_t at = fifo1.waitForSlot(t);
            res.coreStallCycles += at - t;
            t = at;
            fifo1.push(serve1(t, buf));
            ++res.l1Evictions;
            buf.clear();
        }
    }

    res.totalCycles = std::max({t, engine1_free, engine2_free});
    res.tuplesPerLine = k;
    for (const auto &b : l1_buf)
        res.l1Residue += b.size();
    for (const auto &b : l2_buf)
        res.l2Residue += b.size();
    for (uint32_t c : llc_count)
        res.llcResidue += c;
    return res;
}

Status
EvictionDesResult::validate() const
{
    auto fail = [](const char *law, uint64_t want, uint64_t got) {
        std::ostringstream oss;
        oss << "eviction DES conservation violated: " << law
            << " (expected " << want << ", got " << got << ")";
        return Status(ErrorCode::kDataLoss, oss.str());
    };
    const uint64_t k = tuplesPerLine;
    if (tuplesIn != k * l1Evictions + l1Residue)
        return fail("tuplesIn == k*l1Evictions + l1Residue",
                    tuplesIn, k * l1Evictions + l1Residue);
    if (tuplesIntoL2 != k * l1Evictions)
        return fail("tuplesIntoL2 == k*l1Evictions", k * l1Evictions,
                    tuplesIntoL2);
    if (tuplesIntoL2 != k * l2Evictions + l2Residue)
        return fail("tuplesIntoL2 == k*l2Evictions + l2Residue",
                    tuplesIntoL2, k * l2Evictions + l2Residue);
    if (tuplesIntoLlc != k * l2Evictions)
        return fail("tuplesIntoLlc == k*l2Evictions", k * l2Evictions,
                    tuplesIntoLlc);
    if (tuplesIntoLlc != k * llcEvictions + llcResidue)
        return fail("tuplesIntoLlc == k*llcEvictions + llcResidue",
                    tuplesIntoLlc, k * llcEvictions + llcResidue);
    return Status::Ok();
}

} // namespace cobra
