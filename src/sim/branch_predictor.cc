#include "src/sim/branch_predictor.h"

#include <cstddef>

namespace cobra {

BranchPredictor::BranchPredictor(const Config &config) : cfg(config)
{
    table.assign(size_t{1} << cfg.tableBits, 1); // weakly not-taken
}

void
BranchPredictor::reset()
{
    table.assign(table.size(), 1);
    history = 0;
    numBranches = 0;
    numMispredicts = 0;
}

bool
BranchPredictor::predict(uint64_t pc, bool taken)
{
    const uint64_t hist_mask = (uint64_t{1} << cfg.historyBits) - 1;
    const uint64_t idx =
        ((pc >> 2) ^ (history & hist_mask)) & (table.size() - 1);
    uint8_t &ctr = table[idx];
    const bool predicted_taken = ctr >= 2;
    const bool correct = predicted_taken == taken;

    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;

    history = ((history << 1) | (taken ? 1 : 0));
    ++numBranches;
    if (!correct)
        ++numMispredicts;
    return correct;
}

} // namespace cobra
