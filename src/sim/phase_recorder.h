/**
 * @file
 * Per-phase statistics recorder.
 *
 * The paper's evaluation is phase-oriented: Table I breaks PB runtime
 * into Init/Binning/Accumulate, Fig 11 reports per-phase speedups, and
 * Fig 14 aggregates traffic across Binning+Accumulate. Kernels bracket
 * their phases with begin()/end(); the recorder snapshots the simulated
 * counters (and a wall clock, for native runs) and stores deltas.
 *
 * Observability: each begin()/end() bracket also
 *  - emits one chrome-tracing complete span (cat "phase") when a
 *    TraceSession is active,
 *  - records the phase duration into the active MetricsRegistry
 *    (histogram "phase.us" + counter "phase.<name>.count"),
 *  - samples an attached HwCounters group (attachHw) so PhaseStats
 *    carries real per-phase hardware counters next to the simulated
 *    ones. All three are branch-on-null: a recorder with no session /
 *    registry / counters attached costs nothing beyond the existing
 *    snapshot.
 */

#ifndef COBRA_SIM_PHASE_RECORDER_H
#define COBRA_SIM_PHASE_RECORDER_H

#include <string>
#include <vector>

#include "src/obs/hw_counters.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/exec_ctx.h"
#include "src/util/error.h"
#include "src/util/timer.h"

namespace cobra {

/**
 * Canonical phase names (paper Table I). They live here — next to the
 * recorder they label — so phase-bracketing code (ParallelPbRunner,
 * DynamicGraph) doesn't need the kernel interface header.
 */
namespace phase {
inline const std::string kCompute = "compute";       // baseline
inline const std::string kInit = "init";             // bin sizing
inline const std::string kBinning = "binning";
inline const std::string kAccumulate = "accumulate";
} // namespace phase

/** Counter deltas over one phase. */
struct PhaseStats
{
    std::string name;
    double cycles = 0;
    double seconds = 0; ///< wall clock (native runs)
    uint64_t instructions = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t l1Misses = 0;
    uint64_t l1Accesses = 0;
    uint64_t l2Misses = 0;
    uint64_t llcMisses = 0;
    uint64_t llcAccesses = 0;
    uint64_t dramLines = 0;
    uint64_t dramWastedBytes = 0;

    /** Real per-phase hardware counters (attachHw; else all zero). */
    bool hwAvailable = false;
    HwSample hw;

    PhaseStats &
    operator+=(const PhaseStats &o)
    {
        hwAvailable = hwAvailable || o.hwAvailable;
        hw.cycles += o.hw.cycles;
        hw.instructions += o.hw.instructions;
        hw.l1dMisses += o.hw.l1dMisses;
        hw.llcMisses += o.hw.llcMisses;
        hw.branchMisses += o.hw.branchMisses;
        cycles += o.cycles;
        seconds += o.seconds;
        instructions += o.instructions;
        branches += o.branches;
        mispredicts += o.mispredicts;
        l1Misses += o.l1Misses;
        l1Accesses += o.l1Accesses;
        l2Misses += o.l2Misses;
        llcMisses += o.llcMisses;
        llcAccesses += o.llcAccesses;
        dramLines += o.dramLines;
        dramWastedBytes += o.dramWastedBytes;
        return *this;
    }

    double
    branchMissRate() const
    {
        return branches ? static_cast<double>(mispredicts) /
                static_cast<double>(branches)
                        : 0.0;
    }

    double
    llcMissRate() const
    {
        return llcAccesses ? static_cast<double>(llcMisses) /
                static_cast<double>(llcAccesses)
                           : 0.0;
    }
};

/** Brackets kernel phases and stores per-phase counter deltas. */
class PhaseRecorder
{
  public:
    /**
     * Sample @p counters (an opened HwCounters group) at every phase
     * bracket: each recorded PhaseStats then carries the hardware-
     * counter deltas of its phase. The recorder neither opens nor
     * starts the group — the owner controls the measurement window.
     * Pass nullptr to detach.
     */
    void attachHw(HwCounters *counters) { hwc = counters; }

    void
    begin(ExecCtx &ctx, const std::string &phase)
    {
        COBRA_PANIC_IF(open, "phase " << current.name << " still open");
        open = true;
        current = PhaseStats{};
        current.name = phase;
        mark = snapshot(ctx);
        if (hwc && hwc->available())
            hwMark = hwc->read();
        if (TraceSession *ts = TraceSession::active())
            traceStartUs = ts->nowUs();
        timer.reset();
    }

    void
    end(ExecCtx &ctx)
    {
        COBRA_PANIC_IF(!open, "end() without begin()");
        open = false;
        PhaseStats now = snapshot(ctx);
        current.cycles = now.cycles - mark.cycles;
        current.seconds = timer.seconds();
        current.instructions = now.instructions - mark.instructions;
        current.branches = now.branches - mark.branches;
        current.mispredicts = now.mispredicts - mark.mispredicts;
        current.l1Misses = now.l1Misses - mark.l1Misses;
        current.l1Accesses = now.l1Accesses - mark.l1Accesses;
        current.l2Misses = now.l2Misses - mark.l2Misses;
        current.llcMisses = now.llcMisses - mark.llcMisses;
        current.llcAccesses = now.llcAccesses - mark.llcAccesses;
        current.dramLines = now.dramLines - mark.dramLines;
        current.dramWastedBytes = now.dramWastedBytes -
            mark.dramWastedBytes;
        if (hwc && hwc->available()) {
            current.hw = hwc->read() - hwMark;
            current.hwAvailable = true;
        }
        if (TraceSession *ts = TraceSession::active())
            ts->complete(current.name, "phase", traceStartUs,
                         ts->nowUs() - traceStartUs);
        if (MetricsRegistry *reg = MetricsRegistry::active()) {
            reg->counter("phase." + current.name + ".count")->inc();
            reg->histogram("phase.us", 64, 1000)
                ->record(static_cast<uint64_t>(current.seconds * 1e6));
        }
        phases.push_back(current);
    }

    const std::vector<PhaseStats> &all() const { return phases; }

    /** Sum of the named phase across occurrences (0-stats if absent). */
    PhaseStats
    phase(const std::string &name) const
    {
        PhaseStats sum;
        sum.name = name;
        for (const auto &p : phases)
            if (p.name == name)
                sum += p;
        return sum;
    }

    PhaseStats
    total() const
    {
        PhaseStats sum;
        sum.name = "total";
        for (const auto &p : phases)
            sum += p;
        return sum;
    }

    void clear() { phases.clear(); }

    /**
     * Discard a phase left open when an exception unwound mid-bracket
     * (a cancelled/failed run never reaches its end()); no-op when no
     * phase is open. The partial measurement is dropped, not recorded.
     * The RunSupervisor calls this between attempts so the recorder
     * can be reused across retries.
     */
    void abandonOpenPhase() { open = false; }

  private:
    static PhaseStats
    snapshot(ExecCtx &ctx)
    {
        PhaseStats s;
        if (!ctx.simulated())
            return s;
        s.cycles = ctx.coreModel()->cycles().total();
        s.instructions = ctx.coreModel()->instructions();
        s.branches = ctx.branchPredictor()->branches();
        s.mispredicts = ctx.branchPredictor()->mispredicts();
        const auto &h = *ctx.hierarchy();
        s.l1Misses = h.l1().stats().misses();
        s.l1Accesses = h.l1().stats().accesses();
        s.l2Misses = h.l2().stats().misses();
        s.llcMisses = h.llc().stats().misses();
        s.llcAccesses = h.llc().stats().accesses();
        s.dramLines = h.dram().totalLines();
        s.dramWastedBytes = h.dram().wastedBytes();
        return s;
    }

    std::vector<PhaseStats> phases;
    PhaseStats current;
    PhaseStats mark;
    HwCounters *hwc = nullptr;
    HwSample hwMark;
    uint64_t traceStartUs = 0;
    Timer timer;
    bool open = false;
};

} // namespace cobra

#endif // COBRA_SIM_PHASE_RECORDER_H
